// Package telemetry lets the load tester observe itself. The paper's core
// argument (§II-III) is that load testers silently corrupt their own
// measurements — closed-loop arrivals, pooled statistics, client-side
// queueing — and validates Treadmill against tcpdump ground truth. This
// package turns the generator's own health into first-class, measurable
// quantities:
//
//   - Registry: a lightweight metrics registry (atomic counters, gauges,
//     and streaming latency recorders backed by internal/hist snapshots)
//     that client, loadgen, server, sim, and core all register into;
//   - Slippage: a send-slippage self-audit quantifying how far actual
//     sends drift from the open-loop schedule (the paper's pitfall-3
//     client-side bias, made testable);
//   - Tracer: sampled per-request trace records
//     (arrival → enqueue → send → first byte → complete), JSONL export;
//   - Journal: a structured JSONL run journal so every experiment is
//     auditable and re-plottable after the fact;
//   - Serve: an expvar + pprof + /metrics exposition endpoint.
//
// Every handle type is nil-safe: a nil *Counter, *Gauge, *FloatGauge,
// *Recorder, *Tracer, or *Slippage is a disabled metric whose methods are
// no-ops costing a couple of nanoseconds, so instrumented hot paths need no
// branching on "is telemetry on". A nil *Registry likewise hands out nil
// handles.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"treadmill/internal/hist"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter is a disabled no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous integer value (queue depth, in-flight
// count). The zero value is ready; a nil Gauge is a disabled no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic instantaneous float value (running mean, rate).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 for a nil FloatGauge).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Recorder is a concurrent, allocation-free streaming latency recorder:
// fixed log-spaced bins over [lo, hi) with atomic occupancy counts.
// Unlike hist.Histogram (single-owner, adaptive, phase lifecycle), a
// Recorder is safe for concurrent Record calls from many goroutines and
// never re-bins, so the hot path is one Log, one atomic add, and a few CAS
// updates. Its state exports as a hist.Snapshot, so quantile math reuses
// internal/hist.
//
// A nil Recorder is a disabled no-op.
type Recorder struct {
	lo, hi   float64
	logLo    float64
	logWidth float64
	counts   []atomic.Uint64

	n        atomic.Uint64 // valid samples (bins + under + over)
	under    atomic.Uint64
	over     atomic.Uint64
	invalid  atomic.Uint64 // rejected samples (<= 0, NaN, Inf)
	sum      atomicFloat
	min      atomicMin
	max      atomicMax
	underMax atomicMax // largest underflowed value
}

// Default recorder geometry: 50ns to 100s in 1024 log-spaced bins
// (~2% bin width, comfortably inside the engine's 1% convergence
// tolerances).
const (
	defaultRecorderLo   = 50e-9
	defaultRecorderHi   = 100.0
	defaultRecorderBins = 1024
)

// NewRecorder returns a Recorder with bins log-spaced buckets on [lo, hi).
func NewRecorder(lo, hi float64, bins int) (*Recorder, error) {
	if !(lo > 0) || hi <= lo || bins < 2 {
		return nil, fmt.Errorf("telemetry: invalid recorder range [%g,%g) with %d bins", lo, hi, bins)
	}
	r := &Recorder{lo: lo, hi: hi, counts: make([]atomic.Uint64, bins)}
	r.logLo = math.Log(lo)
	r.logWidth = (math.Log(hi) - r.logLo) / float64(bins)
	r.min.bits.Store(math.Float64bits(math.Inf(1)))
	r.max.bits.Store(math.Float64bits(math.Inf(-1)))
	r.underMax.bits.Store(math.Float64bits(0))
	return r, nil
}

// Record adds one sample in seconds. Non-positive, NaN, and infinite
// values are counted as invalid and otherwise dropped (a latency or delay
// can never be <= 0; unlike hist, telemetry must not error on a hot path).
func (r *Recorder) Record(v float64) {
	if r == nil {
		return
	}
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		r.invalid.Add(1)
		return
	}
	r.n.Add(1)
	r.sum.Add(v)
	r.min.Min(v)
	r.max.Max(v)
	switch {
	case v < r.lo:
		r.under.Add(1)
		r.underMax.Max(v)
	case v >= r.hi:
		r.over.Add(1)
	default:
		idx := int((math.Log(v) - r.logLo) / r.logWidth)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(r.counts) {
			idx = len(r.counts) - 1
		}
		r.counts[idx].Add(1)
	}
}

// Count returns the number of valid samples recorded.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.n.Load()
}

// Invalid returns the number of rejected samples.
func (r *Recorder) Invalid() uint64 {
	if r == nil {
		return 0
	}
	return r.invalid.Load()
}

// Mean returns the mean of recorded samples, or 0 when empty.
func (r *Recorder) Mean() float64 {
	if r == nil || r.n.Load() == 0 {
		return 0
	}
	return r.sum.Load() / float64(r.n.Load())
}

// Max returns the largest recorded sample, or 0 when empty.
func (r *Recorder) Max() float64 {
	if r == nil || r.n.Load() == 0 {
		return 0
	}
	return r.max.Load()
}

// Snapshot exports the recorder state as a hist.Snapshot. The snapshot is
// weakly consistent under concurrent recording (counts are read bin by
// bin), which is the standard trade for live telemetry.
func (r *Recorder) Snapshot() *hist.Snapshot {
	if r == nil {
		return nil
	}
	s := &hist.Snapshot{
		Lo:        r.lo,
		Hi:        r.hi,
		Counts:    make([]uint64, len(r.counts)),
		Underflow: r.under.Load(),
		Overflow:  r.over.Load(),
		Sum:       r.sum.Load(),
	}
	for i := range r.counts {
		s.Counts[i] = r.counts[i].Load()
	}
	if n := r.n.Load(); n > 0 {
		s.Min = r.min.Load()
		s.Max = r.max.Load()
	}
	if s.Underflow > 0 {
		s.UnderflowMax = r.underMax.Load()
	}
	if s.Overflow > 0 {
		// The overall max is by definition the largest overflowed value.
		s.OverflowMax = r.max.Load()
	}
	return s
}

// Histogram reconstructs a measurement-phase hist.Histogram from the
// recorder's current snapshot, or nil when empty.
func (r *Recorder) Histogram() *hist.Histogram {
	if r == nil || r.Count() == 0 {
		return nil
	}
	cfg := hist.Config{
		CalibrationSamples:    1,
		Bins:                  len(r.counts),
		OverflowRebinFraction: 0.001,
	}
	h, err := hist.FromSnapshot(r.Snapshot(), cfg)
	if err != nil {
		return nil
	}
	return h
}

// Quantile returns the q-th quantile of recorded samples via the
// hist-snapshot path, or 0 when empty.
func (r *Recorder) Quantile(q float64) float64 {
	h := r.Histogram()
	if h == nil {
		return 0
	}
	v, err := h.Quantile(q)
	if err != nil {
		return 0
	}
	return v
}

// atomicFloat is a float64 accumulator updated with CAS.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// atomicMin / atomicMax track running extrema with CAS.
type atomicMin struct {
	bits atomic.Uint64
}

func (m *atomicMin) Min(v float64) {
	for {
		old := m.bits.Load()
		if v >= math.Float64frombits(old) || m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (m *atomicMin) Load() float64 { return math.Float64frombits(m.bits.Load()) }

type atomicMax struct {
	bits atomic.Uint64
}

func (m *atomicMax) Max(v float64) {
	for {
		old := m.bits.Load()
		if v <= math.Float64frombits(old) || m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (m *atomicMax) Load() float64 { return math.Float64frombits(m.bits.Load()) }

// Registry is a named collection of metrics. Handles are get-or-create: two
// components asking for the same name share the metric, which is how the
// per-run load-generator instances of a TCPRunner aggregate their
// send-slippage into one recorder.
//
// A nil *Registry hands out nil (disabled) handles, so callers thread one
// optional pointer through and never branch.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	fgauges   map[string]*FloatGauge
	recorders map[string]*Recorder
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		fgauges:   make(map[string]*FloatGauge),
		recorders: make(map[string]*Recorder),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Recorder returns the named latency recorder with the default range
// (50ns-100s), creating it on first use.
func (r *Registry) Recorder(name string) *Recorder {
	return r.RecorderRange(name, defaultRecorderLo, defaultRecorderHi, defaultRecorderBins)
}

// RecorderRange returns the named recorder, creating it with the given
// geometry on first use (an existing recorder keeps its original geometry).
func (r *Registry) RecorderRange(name string, lo, hi float64, bins int) *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.recorders[name]
	if !ok {
		var err error
		rec, err = NewRecorder(lo, hi, bins)
		if err != nil {
			// Invalid geometry falls back to the default range rather than
			// poisoning a hot path with a nil that the caller asked for.
			rec, _ = NewRecorder(defaultRecorderLo, defaultRecorderHi, defaultRecorderBins)
		}
		r.recorders[name] = rec
	}
	return rec
}

// RecorderStats summarizes one recorder for exposition.
type RecorderStats struct {
	Count   uint64  `json:"count"`
	Invalid uint64  `json:"invalid,omitempty"`
	Mean    float64 `json:"mean"`
	Max     float64 `json:"max"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
	P999    float64 `json:"p999"`
}

// MetricsSnapshot is a point-in-time JSON-friendly image of a Registry.
type MetricsSnapshot struct {
	Counters    map[string]uint64        `json:"counters,omitempty"`
	Gauges      map[string]int64         `json:"gauges,omitempty"`
	FloatGauges map[string]float64       `json:"float_gauges,omitempty"`
	Recorders   map[string]RecorderStats `json:"recorders,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for k, v := range r.fgauges {
		fgauges[k] = v
	}
	recorders := make(map[string]*Recorder, len(r.recorders))
	for k, v := range r.recorders {
		recorders[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]uint64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
	}
	if len(fgauges) > 0 {
		s.FloatGauges = make(map[string]float64, len(fgauges))
		for k, v := range fgauges {
			s.FloatGauges[k] = v.Value()
		}
	}
	if len(recorders) > 0 {
		s.Recorders = make(map[string]RecorderStats, len(recorders))
		for k, v := range recorders {
			st := RecorderStats{Count: v.Count(), Invalid: v.Invalid(), Mean: v.Mean(), Max: v.Max()}
			if h := v.Histogram(); h != nil {
				if qs, err := h.Quantiles(0.5, 0.95, 0.99, 0.999); err == nil {
					st.P50, st.P95, st.P99, st.P999 = qs[0], qs[1], qs[2], qs[3]
				}
			}
			s.Recorders[k] = st
		}
	}
	return s
}

// Names returns the sorted names of all registered metrics (for tests and
// rendering).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.fgauges {
		names = append(names, k)
	}
	for k := range r.recorders {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
