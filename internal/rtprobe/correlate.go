package rtprobe

import (
	"treadmill/internal/anatomy"
	"treadmill/internal/protocol"
)

// Correlate merges a server-timing trailer into the client's coarse phase
// decomposition, producing the live-mode anatomy ledger. The result always
// tiles the client-measured latency (the phase-sum invariant the simulator's
// ledgers are tested against):
//
//   - The client-only spans (ClientSend, ClientRecv) come straight from the
//     client stamps, exactly as in the coarse mirror.
//   - The coarse WireServer span is split into the server-derived phases:
//     SrvParse/SrvStore/SrvSerialize/SrvWrite from the server's wall-clock
//     stamps, SrvGC and ServerQueue (scheduler wait) from the runtime
//     attribution — which overlap the wall-clock spans, so that interference
//     is first subtracted proportionally from the stamped spans to keep the
//     decomposition additive.
//   - Whatever the server cannot account for (network stack, NIC, wire) is
//     reported explicitly as Other, computed as the exact residual of the
//     wire window, never silently absorbed.
//
// If the server's span sum exceeds the client-observed wire window (clock
// skew, coarse timers), every server-derived span is scaled down to fit and
// the clamp is reported via the returned clamped flag. A nil trailer yields
// the plain coarse decomposition. ok is false when the client stamps are
// invalid (error/disconnect paths), mirroring ClientStamps.Coarse.
func Correlate(cs anatomy.ClientStamps, st *protocol.ServerTiming) (v anatomy.Vec, total float64, ok, clamped bool) {
	v, total, ok = cs.Coarse()
	if !ok || st == nil {
		return v, total, ok, false
	}
	wire := v[anatomy.WireServer]

	parse := float64(st.ParseNs) / 1e9
	store := float64(st.StoreNs) / 1e9
	serialize := float64(st.SerializeNs) / 1e9
	write := float64(st.WriteNs) / 1e9
	gc := float64(st.GCNs) / 1e9
	sched := float64(st.SchedNs) / 1e9
	if parse < 0 || store < 0 || serialize < 0 || write < 0 || gc < 0 || sched < 0 {
		// Corrupt trailer; fall back to the coarse view rather than emit a
		// ledger that cannot tile.
		return v, total, ok, false
	}

	// GC pauses and scheduler wait happened *inside* the stamped wall-clock
	// spans (they inflate them). Pull the interference out proportionally so
	// the six server phases remain additive.
	wall := parse + store + serialize + write
	interference := gc + sched
	if interference > wall && interference > 0 {
		f := wall / interference
		gc *= f
		sched *= f
		interference = wall
	}
	if wall > 0 {
		f := (wall - interference) / wall
		parse *= f
		store *= f
		serialize *= f
		write *= f
	}

	// The server-derived spans must fit inside the client-observed wire
	// window; scale down (and report) when they do not.
	sum := parse + store + serialize + write + gc + sched
	if sum > wire {
		clamped = true
		f := 0.0
		if sum > 0 {
			f = wire / sum
		}
		parse *= f
		store *= f
		serialize *= f
		write *= f
		gc *= f
		sched *= f
	}

	v[anatomy.SrvParse] = parse
	v[anatomy.SrvStore] = store
	v[anatomy.SrvSerialize] = serialize
	v[anatomy.SrvWrite] = write
	v[anatomy.SrvGC] = gc
	v[anatomy.ServerQueue] = sched
	v[anatomy.WireServer] = 0

	// Exact residual keeps the phase-sum invariant: assigned + other == wire
	// to within float addition error.
	other := wire - (parse + store + serialize + write + gc + sched)
	if other < 0 {
		other = 0
	}
	v[anatomy.Other] = other
	return v, total, true, clamped
}
