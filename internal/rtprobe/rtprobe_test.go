package rtprobe

import (
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
	"time"

	"treadmill/internal/anatomy"
	"treadmill/internal/protocol"
	"treadmill/internal/telemetry"
)

// churn allocates aggressively to force GC cycles.
func churn(stop <-chan struct{}) {
	var sink [][]byte
	for {
		select {
		case <-stop:
			return
		default:
		}
		sink = append(sink, make([]byte, 64<<10))
		if len(sink) > 64 {
			sink = sink[:0]
		}
	}
}

// TestAttributeUnderGCPressure drives allocation churn with an aggressive
// GOGC so real GC pauses land inside the sampled window, then checks the
// attribution invariants: spans are non-negative and never exceed the
// queried window.
func TestAttributeUnderGCPressure(t *testing.T) {
	origGC := debug.SetGCPercent(10)
	defer debug.SetGCPercent(origGC)

	s := NewSampler(Config{Interval: 200 * time.Microsecond})
	s.Start()
	defer s.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); churn(stop) }()
	}
	start := time.Now()
	time.Sleep(150 * time.Millisecond)
	end := time.Now()
	close(stop)
	wg.Wait()

	window := end.Sub(start).Seconds()
	gc, sched := s.Attribute(start.UnixNano(), end.UnixNano())
	if gc < 0 || sched < 0 {
		t.Fatalf("negative attribution: gc=%g sched=%g", gc, sched)
	}
	if gc+sched > window+1e-9 {
		t.Fatalf("attribution %g exceeds window %g", gc+sched, window)
	}
	// With GOGC=10 and two allocation hogs, 150ms must contain GC pauses.
	if gc == 0 {
		t.Errorf("expected nonzero GC attribution under forced churn")
	}
	// Sub-windows must be monotone: a nested window attributes no more.
	midGC, _ := s.Attribute(start.UnixNano(), start.UnixNano()+end.Sub(start).Nanoseconds()/2)
	if midGC > gc+1e-9 {
		t.Errorf("nested window attributed more GC (%g) than full window (%g)", midGC, gc)
	}
}

// TestAttributeUnderSchedulerContention saturates the scheduler with more
// runnable goroutines than GOMAXPROCS and expects nonzero scheduler-wait
// attribution with the invariants intact.
func TestAttributeUnderSchedulerContention(t *testing.T) {
	s := NewSampler(Config{Interval: 200 * time.Microsecond})
	s.Start()
	defer s.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4*runtime.GOMAXPROCS(0); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(100 * time.Millisecond)
	end := time.Now()
	close(stop)
	wg.Wait()

	window := end.Sub(start).Seconds()
	gc, sched := s.Attribute(start.UnixNano(), end.UnixNano())
	if gc < 0 || sched < 0 || gc+sched > window+1e-9 {
		t.Fatalf("attribution out of range: gc=%g sched=%g window=%g", gc, sched, window)
	}
	if sched == 0 {
		t.Errorf("expected nonzero scheduler-wait attribution under contention")
	}
}

// TestSamplerNoGoroutineLeak starts and stops samplers and verifies the
// goroutine count returns to baseline (run with -race in CI).
func TestSamplerNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		s := NewSampler(Config{Interval: time.Millisecond})
		s.Start()
		s.Attribute(time.Now().Add(-time.Millisecond).UnixNano(), time.Now().UnixNano())
		s.Stop()
		s.Stop() // idempotent
	}
	// Allow scheduler cleanup before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestNilAndUnstartedSampler covers the disabled paths.
func TestNilAndUnstartedSampler(t *testing.T) {
	var nilS *Sampler
	if gc, sched := nilS.Attribute(0, 1e9); gc != 0 || sched != 0 {
		t.Errorf("nil sampler attributed gc=%g sched=%g", gc, sched)
	}
	nilS.Start()
	nilS.Stop()

	s := NewSampler(Config{})
	if gc, sched := s.Attribute(0, 1e9); gc != 0 || sched != 0 {
		t.Errorf("unstarted sampler attributed gc=%g sched=%g", gc, sched)
	}
	s.Stop() // never started: must not hang
}

// TestSamplerGauges verifies the rtprobe_* gauges are registered and
// populated when a registry is attached.
func TestSamplerGauges(t *testing.T) {
	reg := telemetry.New()
	s := NewSampler(Config{Interval: time.Millisecond, Registry: reg})
	s.Start()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	snap := reg.Snapshot()
	found := false
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "rtprobe_") {
			found = true
		}
		if name == "rtprobe_gomaxprocs" && v < 1 {
			t.Errorf("rtprobe_gomaxprocs = %d", v)
		}
	}
	if !found {
		t.Error("no rtprobe_* gauges registered")
	}
}

func stamps(arrival, send, first, complete int64) anatomy.ClientStamps {
	return anatomy.ClientStamps{ArrivalNs: arrival, SendNs: send, FirstByteNs: first, CompleteNs: complete}
}

// TestCorrelatePhaseSumInvariant: for a grid of trailers (including
// overlapping GC/sched and server sums exceeding the wire window) the
// resulting ledger must tile the measured latency within float tolerance,
// with all spans non-negative and the remainder in Other.
func TestCorrelatePhaseSumInvariant(t *testing.T) {
	cs := stamps(0, 10_000, 510_000, 520_000) // wire window 500us
	cases := []*protocol.ServerTiming{
		nil,
		{},
		{ParseNs: 20_000, StoreNs: 50_000, SerializeNs: 10_000, WriteNs: 30_000},
		{ParseNs: 20_000, StoreNs: 50_000, SerializeNs: 10_000, WriteNs: 30_000, GCNs: 40_000, SchedNs: 15_000},
		// Interference exceeding wall-clock spans (clamped proportionally).
		{ParseNs: 1_000, StoreNs: 1_000, SerializeNs: 1_000, WriteNs: 1_000, GCNs: 100_000, SchedNs: 100_000},
		// Server sum exceeding the wire window (clock skew; scaled down).
		{ParseNs: 300_000, StoreNs: 300_000, SerializeNs: 100_000, WriteNs: 100_000, GCNs: 50_000, SchedNs: 50_000},
	}
	for i, st := range cases {
		v, total, ok, _ := Correlate(cs, st)
		if !ok {
			t.Fatalf("case %d: not ok", i)
		}
		for p, d := range v {
			if d < 0 {
				t.Errorf("case %d: phase %s negative: %g", i, anatomy.Phase(p), d)
			}
		}
		if diff := math.Abs(v.Sum() - total); diff > 1e-12 {
			t.Errorf("case %d: phase sum %g != total %g (diff %g)", i, v.Sum(), total, diff)
		}
		if st != nil && v[anatomy.WireServer] != 0 {
			t.Errorf("case %d: WireServer not split: %g", i, v[anatomy.WireServer])
		}
	}
}

// TestCorrelateClamped verifies the clamp flag fires exactly when server
// spans exceed the client wire window.
func TestCorrelateClamped(t *testing.T) {
	cs := stamps(0, 10_000, 510_000, 520_000)
	if _, _, _, clamped := Correlate(cs, &protocol.ServerTiming{ParseNs: 10_000}); clamped {
		t.Error("clamped on in-window trailer")
	}
	if _, _, _, clamped := Correlate(cs, &protocol.ServerTiming{ParseNs: 900_000}); !clamped {
		t.Error("no clamp on out-of-window trailer")
	}
}

// TestCorrelateInvalidStamps mirrors ClientStamps.Coarse: bad stamps are
// rejected rather than producing a non-tiling ledger.
func TestCorrelateInvalidStamps(t *testing.T) {
	if _, _, ok, _ := Correlate(stamps(10, 5, 20, 30), &protocol.ServerTiming{}); ok {
		t.Error("accepted non-monotone stamps")
	}
}

// TestCorrelateAssignsPhases checks the span routing: wall spans land in the
// Srv* phases, sched in ServerQueue, and the residual in Other.
func TestCorrelateAssignsPhases(t *testing.T) {
	cs := stamps(0, 0, 1_000_000, 1_000_000) // 1ms wire window, no client spans
	st := &protocol.ServerTiming{ParseNs: 100_000, StoreNs: 200_000, SerializeNs: 50_000, WriteNs: 150_000}
	v, total, ok, clamped := Correlate(cs, st)
	if !ok || clamped {
		t.Fatalf("ok=%v clamped=%v", ok, clamped)
	}
	if total != 1e-3 {
		t.Fatalf("total = %g", total)
	}
	if v[anatomy.SrvParse] != 100e-6 || v[anatomy.SrvStore] != 200e-6 ||
		v[anatomy.SrvSerialize] != 50e-6 || v[anatomy.SrvWrite] != 150e-6 {
		t.Errorf("wall spans misrouted: %+v", v)
	}
	if math.Abs(v[anatomy.Other]-500e-6) > 1e-12 {
		t.Errorf("Other = %g, want 500us", v[anatomy.Other])
	}
}
