// Package rtprobe derives per-request server-side phase attributions from Go
// runtime signals. The simulator stamps exact phase ledgers because it owns
// every mechanism; a real server cannot — but the Go runtime continuously
// publishes two of the mechanisms that matter most for tail latency
// (stop-the-world GC pauses and scheduler run-queue wait) as cumulative
// histograms in runtime/metrics. This package polls those histograms on a
// fixed cadence into a ring of cumulative sums, so that for any request
// residence window [start, end] it can answer "how much GC pause and
// scheduler wait overlapped this request" by interpolating the cumulative
// curves at the window edges and differencing.
//
// The attribution is necessarily process-wide (the runtime does not tag
// pauses with the goroutine they stalled), so callers treat the result as an
// upper-bound overlap estimate and clamp it to the request's own window; the
// correlation step (Correlate) then folds it into the anatomy ledger while
// preserving the phase-sum invariant: spans always tile the client-measured
// latency, with any unattributed remainder reported as an explicit Other
// phase rather than silently absorbed.
package rtprobe

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"treadmill/internal/telemetry"
)

// metric names polled each interval.
const (
	metricGCPauses  = "/gc/pauses:seconds"
	metricSchedLat  = "/sched/latencies:seconds"
	metricHeapBytes = "/memory/classes/heap/objects:bytes"
	metricProcs     = "/sched/gomaxprocs:threads"
)

// wakeupsPerRequest is the number of goroutine scheduling wakeups a pipelined
// request costs the server on the happy path: one to run the connection
// goroutine when request bytes arrive, one when the write completes/flushes.
// The scheduler-latency histogram is per-wakeup, so the per-request estimate
// is the windowed per-wakeup mean times this factor.
const wakeupsPerRequest = 2

// Config parameterizes a Sampler.
type Config struct {
	// Interval is the polling cadence (default 1ms). Each poll is two
	// histogram reads — cheap enough that 1ms adds well under 1% CPU.
	Interval time.Duration
	// Window is how much history the ring retains (default 2s). Attribute
	// calls outside the retained window see the oldest/newest sample, which
	// degrades to "no delta" rather than an error.
	Window time.Duration
	// Registry, when non-nil, receives rtprobe_* gauges updated every poll.
	Registry *telemetry.Registry
}

// sample is one poll: wall-clock instant plus cumulative sums derived from
// the runtime histograms (Σ count×bucket-midpoint, monotone non-decreasing).
type sample struct {
	wallNs     int64
	gcSum      float64 // cumulative GC pause seconds
	schedSum   float64 // cumulative scheduler-wait seconds
	schedCount float64 // cumulative scheduler wakeups observed
}

// Sampler polls runtime/metrics into a ring buffer and answers windowed
// attribution queries. A nil *Sampler is a disabled no-op: Attribute returns
// zeros and Stop is safe. All methods are safe for concurrent use.
type Sampler struct {
	cfg Config

	mu   sync.RWMutex
	ring []sample // circular, fixed capacity
	head int      // index of oldest sample
	n    int      // number of valid samples

	samples []metrics.Sample // reused read buffer (poll goroutine only)

	gProcs *telemetry.Gauge
	gHeap  *telemetry.Gauge
	gGC    *telemetry.FloatGauge
	gSched *telemetry.FloatGauge

	startOnce sync.Once
	stopOnce  sync.Once
	started   bool
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler builds a sampler (not yet polling; call Start).
func NewSampler(cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 2 * time.Second
	}
	capacity := int(cfg.Window/cfg.Interval) + 2
	if capacity < 8 {
		capacity = 8
	}
	s := &Sampler{
		cfg:  cfg,
		ring: make([]sample, capacity),
		samples: []metrics.Sample{
			{Name: metricGCPauses},
			{Name: metricSchedLat},
			{Name: metricHeapBytes},
			{Name: metricProcs},
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		s.gProcs = reg.Gauge("rtprobe_gomaxprocs")
		s.gHeap = reg.Gauge("rtprobe_heap_objects_bytes")
		s.gGC = reg.FloatGauge("rtprobe_gc_pause_total_seconds")
		s.gSched = reg.FloatGauge("rtprobe_sched_wait_total_seconds")
	}
	return s
}

// Start launches the polling goroutine. Safe to call more than once; only
// the first call has effect. A nil Sampler ignores the call.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		s.started = true
		s.poll() // seed one sample synchronously so Attribute works at once
		go s.loop()
	})
}

// Stop halts polling and waits for the goroutine to exit (no leaks). Safe on
// a nil or never-started Sampler, and idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() {
		close(s.stop)
	})
	// Consume startOnce so a Start after Stop cannot launch a fresh loop,
	// then wait for the loop only if one was ever started.
	s.startOnce.Do(func() {})
	if s.started {
		<-s.done
	}
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.poll()
		}
	}
}

// poll reads the runtime histograms and appends one sample to the ring.
func (s *Sampler) poll() {
	metrics.Read(s.samples)
	now := time.Now().UnixNano()
	var sm sample
	sm.wallNs = now
	if h := histOf(&s.samples[0]); h != nil {
		sm.gcSum, _ = histSum(h)
	}
	if h := histOf(&s.samples[1]); h != nil {
		sm.schedSum, sm.schedCount = histSum(h)
	}
	if s.gHeap != nil && s.samples[2].Value.Kind() == metrics.KindUint64 {
		s.gHeap.Set(int64(s.samples[2].Value.Uint64()))
	}
	if s.gProcs != nil && s.samples[3].Value.Kind() == metrics.KindUint64 {
		s.gProcs.Set(int64(s.samples[3].Value.Uint64()))
	}
	if s.gGC != nil {
		s.gGC.Set(sm.gcSum)
	}
	if s.gSched != nil {
		s.gSched.Set(sm.schedSum)
	}

	s.mu.Lock()
	if s.n == len(s.ring) {
		s.ring[s.head] = sm
		s.head = (s.head + 1) % len(s.ring)
	} else {
		s.ring[(s.head+s.n)%len(s.ring)] = sm
		s.n++
	}
	s.mu.Unlock()
}

func histOf(sm *metrics.Sample) *metrics.Float64Histogram {
	if sm.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return sm.Value.Float64Histogram()
}

// histSum collapses a cumulative runtime histogram into (Σ count×midpoint,
// Σ count). Infinite bucket edges are clamped to their finite neighbor so
// the overflow buckets contribute a finite, conservative estimate.
func histSum(h *metrics.Float64Histogram) (sum float64, count float64) {
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		mid := (lo + hi) / 2
		if math.IsInf(mid, 0) || math.IsNaN(mid) {
			continue
		}
		sum += float64(c) * mid
		count += float64(c)
	}
	return sum, count
}

// at returns the i-th logical (oldest-first) sample. Caller holds mu.
func (s *Sampler) at(i int) sample {
	return s.ring[(s.head+i)%len(s.ring)]
}

// valueAt interpolates the cumulative curves at wall-clock instant t.
// Outside the retained window it clamps to the oldest/newest sample (zero
// delta rather than extrapolated nonsense). Caller holds mu (read).
func (s *Sampler) valueAt(t int64) (gcSum, schedSum, schedCount float64) {
	first, last := s.at(0), s.at(s.n-1)
	if t <= first.wallNs {
		return first.gcSum, first.schedSum, first.schedCount
	}
	if t >= last.wallNs {
		return last.gcSum, last.schedSum, last.schedCount
	}
	// Binary search for the first sample at or after t.
	lo, hi := 0, s.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.at(mid).wallNs < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b := s.at(lo)
	a := s.at(lo - 1)
	span := float64(b.wallNs - a.wallNs)
	if span <= 0 {
		return b.gcSum, b.schedSum, b.schedCount
	}
	f := float64(t-a.wallNs) / span
	return a.gcSum + f*(b.gcSum-a.gcSum),
		a.schedSum + f*(b.schedSum-a.schedSum),
		a.schedCount + f*(b.schedCount-a.schedCount)
}

// Attribute estimates the GC-pause seconds and scheduler-wait seconds that
// overlapped the residence window [startNs, endNs] (UnixNano). Both results
// are clamped to the window length (a process-wide pause cannot have stalled
// this request for longer than the request existed); their sum never exceeds
// the window. A nil or unstarted Sampler returns zeros.
func (s *Sampler) Attribute(startNs, endNs int64) (gcSec, schedSec float64) {
	if s == nil || endNs <= startNs {
		return 0, 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.n < 2 {
		return 0, 0
	}
	window := float64(endNs-startNs) / 1e9
	g0, w0, c0 := s.valueAt(startNs)
	g1, w1, c1 := s.valueAt(endNs)
	gcSec = clamp(g1-g0, 0, window)

	// Scheduler wait is per-wakeup; estimate the request's share as the
	// windowed per-wakeup mean times the wakeups one request costs.
	perWakeup := 0.0
	if dc := c1 - c0; dc >= 1 {
		perWakeup = (w1 - w0) / dc
	} else {
		// Too few wakeups landed inside the window for a local mean; fall
		// back to the whole retained window.
		first, last := s.at(0), s.at(s.n-1)
		if dc := last.schedCount - first.schedCount; dc >= 1 {
			perWakeup = (last.schedSum - first.schedSum) / dc
		}
	}
	schedSec = clamp(perWakeup*wakeupsPerRequest, 0, window-gcSec)
	return gcSec, schedSec
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
