package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treadmill/internal/agg"
	"treadmill/internal/anatomy"
	"treadmill/internal/client"
	"treadmill/internal/dist"
	"treadmill/internal/loadgen"
	"treadmill/internal/rtprobe"
	"treadmill/internal/server"
	"treadmill/internal/telemetry"
	"treadmill/internal/workload"
)

// LiveKnobs are the real runtime/deployment knobs a live factorial can
// turn — the live-mode analogue of the simulator's ClusterConfig. GOMAXPROCS
// and GOGC are process-wide Go runtime settings; Conns and ValueSize shape
// the offered load.
type LiveKnobs struct {
	GOMAXPROCS int
	GOGC       int
	Conns      int
	ValueSize  int
	// SrvBatch is the server's response flush-coalescing delay
	// (server.Config.FlushDelay): 0 flushes eagerly, > 0 holds idle
	// connections briefly hoping to batch responses. The cost lands in the
	// server's write span, so live quantreg prices the batching trade.
	SrvBatch time.Duration
}

// DefaultLiveKnobs returns the baseline configuration factors mutate.
func DefaultLiveKnobs() LiveKnobs {
	return LiveKnobs{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOGC:       100,
		Conns:      2,
		ValueSize:  64,
	}
}

// LiveFactor is one 2-level factor of a live factorial: the same shape as
// Factor, but Apply mutates LiveKnobs instead of a simulated cluster.
type LiveFactor struct {
	Name      string
	Low, High string
	Apply     func(k *LiveKnobs, level int)
}

// LiveFactors returns the default live factorial: the two Go runtime knobs
// that move GC and scheduling mechanisms (GOMAXPROCS, GOGC) crossed with two
// load-shape knobs (connection count, value size) and one server deployment
// knob (response flush batching). GOGC's high level is the aggressive
// setting (GC runs 16x as often as the relaxed low level), so a positive
// high-level coefficient reads "more GC hurts".
func LiveFactors() []LiveFactor {
	procs := runtime.NumCPU()
	if procs < 2 {
		procs = 2
	}
	return []LiveFactor{
		{
			Name: "gomaxprocs", Low: "1", High: fmt.Sprint(procs),
			Apply: func(k *LiveKnobs, level int) {
				if level == 0 {
					k.GOMAXPROCS = 1
				} else {
					k.GOMAXPROCS = procs
				}
			},
		},
		{
			Name: "gogc", Low: "400", High: "25",
			Apply: func(k *LiveKnobs, level int) {
				if level == 0 {
					k.GOGC = 400
				} else {
					k.GOGC = 25
				}
			},
		},
		{
			Name: "conns", Low: "1", High: "8",
			Apply: func(k *LiveKnobs, level int) {
				if level == 0 {
					k.Conns = 1
				} else {
					k.Conns = 8
				}
			},
		},
		{
			Name: "valuesize", Low: "64B", High: "4KiB",
			Apply: func(k *LiveKnobs, level int) {
				if level == 0 {
					k.ValueSize = 64
				} else {
					k.ValueSize = 4096
				}
			},
		},
		{
			Name: "srvbatch", Low: "off", High: "200µs",
			Apply: func(k *LiveKnobs, level int) {
				if level == 0 {
					k.SrvBatch = 0
				} else {
					k.SrvBatch = 200 * time.Microsecond
				}
			},
		},
	}
}

// LiveStudy runs a factorial attribution campaign against a real in-process
// memcached server over loopback TCP, with server-timing trailers and the
// rtprobe runtime sampler supplying the live anatomy ledger. It produces the
// same Result type as the simulated Study, so quantile-regression fitting,
// marginal-impact tables, and anatomy rendering are shared.
//
// Unlike the simulated Study, experiments run strictly sequentially:
// GOMAXPROCS and GOGC are process-wide, so concurrent cells would contaminate
// each other — the live campaign trades wall-clock for isolation.
type LiveStudy struct {
	// Factors are the live factors (default: LiveFactors).
	Factors []LiveFactor
	// TotalRate is the offered open-loop load, split over the connections.
	TotalRate float64
	// Duration / Warmup are wall-clock per experiment; warmup completions
	// are excluded from the quantile samples.
	Duration, Warmup time.Duration
	// Replicates is the number of experiments per permutation.
	Replicates int
	// Quantiles to extract per experiment.
	Quantiles []float64
	// Keys is the preloaded key-space size (default 256).
	Keys int
	// Seed drives schedule randomization and per-run workload seeds.
	Seed uint64
	// Progress, when non-nil, receives (done, total) after each experiment.
	Progress func(done, total int)
	// Telemetry, when non-nil, receives campaign gauges plus the rtprobe_*
	// runtime gauges and client/server metrics.
	Telemetry *telemetry.Registry
	// CollectAnatomy accumulates per-cell live anatomy breakdowns
	// (Result.Anatomy), tagged anatomy.SourceLive.
	CollectAnatomy bool
	// Journal, when non-nil (and CollectAnatomy set), receives one
	// "anatomy" event per factorial cell after the campaign.
	Journal *telemetry.Journal
}

func (s *LiveStudy) validate() error {
	if len(s.Factors) == 0 || len(s.Factors) > 8 {
		return fmt.Errorf("runner: need 1-8 live factors, got %d", len(s.Factors))
	}
	if s.TotalRate <= 0 || s.Duration <= 0 || s.Warmup < 0 {
		return fmt.Errorf("runner: need positive rate/duration")
	}
	if s.Replicates < 1 {
		return fmt.Errorf("runner: need >= 1 replicate")
	}
	if len(s.Quantiles) == 0 {
		return fmt.Errorf("runner: need at least one quantile")
	}
	return nil
}

// Run executes the live campaign. Each experiment gets a fresh server (the
// paper's restart-between-runs hysteresis control), fresh connections, and
// its own preloaded store; the Go runtime knobs are set before the server
// starts and restored when the campaign ends.
func (s *LiveStudy) Run(ctx context.Context) (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	probe := rtprobe.NewSampler(rtprobe.Config{Registry: s.Telemetry})
	probe.Start()
	defer probe.Stop()

	// Capture the ambient runtime knobs so the process leaves the campaign
	// the way it entered. SetGCPercent has no getter; set-and-restore reads
	// the current value.
	origProcs := runtime.GOMAXPROCS(0)
	origGC := debug.SetGCPercent(100)
	debug.SetGCPercent(origGC)
	defer func() {
		runtime.GOMAXPROCS(origProcs)
		debug.SetGCPercent(origGC)
	}()

	// Same randomized schedule construction as the simulated Study.
	perms := Permutations(len(s.Factors))
	var schedule [][]int
	for r := 0; r < s.Replicates; r++ {
		schedule = append(schedule, perms...)
	}
	rng := dist.NewRNG(s.Seed)
	rng.Shuffle(len(schedule), func(i, j int) { schedule[i], schedule[j] = schedule[j], schedule[i] })

	res := &Result{Quantiles: append([]float64(nil), s.Quantiles...)}
	for _, f := range s.Factors {
		res.Factors = append(res.Factors, f.Name)
	}
	doneG := s.Telemetry.Gauge("runner.experiments_done")
	totalG := s.Telemetry.Gauge("runner.experiments_total")
	totalG.Set(int64(len(schedule)))

	var cellAggs map[string]*anatomy.Aggregator
	if s.CollectAnatomy {
		cellAggs = make(map[string]*anatomy.Aggregator)
	}
	for idx, levels := range schedule {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		knobs := DefaultLiveKnobs()
		for i, f := range s.Factors {
			f.Apply(&knobs, levels[i])
		}
		var cellAgg *anatomy.Aggregator
		if cellAggs != nil {
			key := LevelsKey(levels)
			cellAgg = cellAggs[key]
			if cellAgg == nil {
				cfg := anatomy.DefaultConfig()
				cfg.Source = anatomy.SourceLive
				var err error
				if cellAgg, err = anatomy.NewAggregator(cfg); err != nil {
					return nil, err
				}
				cellAggs[key] = cellAgg
			}
		}
		// Label the cell's execution (server goroutines and load-generator
		// connections inherit the labels at spawn) so a live campaign's CPU
		// profile splits by factorial cell.
		var sample Sample
		var err error
		pprof.Do(ctx, pprof.Labels("study_cell", LevelsKey(levels)), func(ctx context.Context) {
			sample, err = s.runCell(ctx, knobs, levels, probe, cellAgg, s.Seed+uint64(idx)*7919+1)
		})
		if err != nil {
			return nil, fmt.Errorf("runner: live experiment %d (levels %v): %w", idx, levels, err)
		}
		res.Samples = append(res.Samples, sample)
		doneG.Set(int64(idx + 1))
		if s.Progress != nil {
			s.Progress(idx+1, len(schedule))
		}
	}

	if cellAggs != nil {
		res.Anatomy = make(map[string]*anatomy.Breakdown, len(cellAggs))
		keys := make([]string, 0, len(cellAggs))
		for key := range cellAggs {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			b := cellAggs[key].Finalize()
			res.Anatomy[key] = b
			if s.Journal != nil {
				if err := s.Journal.Emit(telemetry.Event{
					Kind:    telemetry.EventAnatomy,
					Anatomy: b.Record("cell " + key),
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return res, nil
}

// runCell performs one live experiment: apply the runtime knobs, boot a
// fresh server with the probe attached, preload, drive timed open-loop load
// over loopback, and extract quantiles from post-warmup completions.
func (s *LiveStudy) runCell(ctx context.Context, knobs LiveKnobs, levels []int, probe *rtprobe.Sampler, cellAgg *anatomy.Aggregator, seed uint64) (Sample, error) {
	runtime.GOMAXPROCS(knobs.GOMAXPROCS)
	debug.SetGCPercent(knobs.GOGC)

	scfg := server.DefaultConfig()
	scfg.Telemetry = s.Telemetry
	scfg.Probe = probe
	scfg.FlushDelay = knobs.SrvBatch
	srv, err := server.New(scfg)
	if err != nil {
		return Sample{}, err
	}
	if err := srv.Start(); err != nil {
		return Sample{}, err
	}
	defer srv.Close()

	keys := s.Keys
	if keys <= 0 {
		keys = 256
	}
	wl := workload.Default()
	wl.Keys = keys
	wl.ValueSize = workload.SizeDist{Kind: "constant", Value: float64(knobs.ValueSize)}
	if err := loadgen.Preload(srv.Addr(), wl, seed); err != nil {
		return Sample{}, err
	}

	// One generator covers warmup and measurement so connections stay warm;
	// completions before the measurement gate opens are discarded.
	var measureFrom atomic.Int64
	measureFrom.Store(1 << 62)
	var mu sync.Mutex
	var lats []float64
	gen, err := loadgen.NewOpenLoop(srv.Addr(), loadgen.Options{
		Rate:         s.TotalRate,
		Conns:        knobs.Conns,
		Workload:     wl,
		Seed:         seed,
		Telemetry:    s.Telemetry,
		Anatomy:      cellAgg,
		ServerTiming: true,
		OnResult: func(r *client.Result) {
			if r.Err != nil || r.Done.UnixNano() < measureFrom.Load() {
				return
			}
			lat := r.RTT().Seconds()
			mu.Lock()
			lats = append(lats, lat)
			mu.Unlock()
		},
	})
	if err != nil {
		return Sample{}, err
	}
	defer gen.Close()

	measureFrom.Store(time.Now().Add(s.Warmup).UnixNano())
	if _, err := gen.Run(ctx, s.Warmup+s.Duration); err != nil {
		return Sample{}, err
	}

	mu.Lock()
	defer mu.Unlock()
	if len(lats) == 0 {
		return Sample{}, fmt.Errorf("no measured completions")
	}
	src := []agg.QuantileSource{agg.Samples(lats)}
	sample := Sample{
		Levels:    append([]int(nil), levels...),
		Quantiles: make(map[float64]float64, len(s.Quantiles)),
	}
	for _, q := range s.Quantiles {
		v, err := agg.PerInstance(src, q, agg.Mean)
		if err != nil {
			return Sample{}, err
		}
		sample.Quantiles[q] = v
	}
	return sample, nil
}
