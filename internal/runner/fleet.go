package runner

import (
	"context"
	"encoding/json"
	"fmt"

	"treadmill/internal/dist"
	"treadmill/internal/fleet"
	"treadmill/internal/fleet/wire"
)

// StudyCellKind tags fleet cells that carry one factorial-study
// experiment.
const StudyCellKind = "study"

// studyCellPayload is the wire description of one experiment: the factor
// levels and the schedule-derived seed. The agent holds the full Study
// configuration locally, so the cell only needs what varies per run.
type studyCellPayload struct {
	Levels []int  `json:"levels"`
	Seed   uint64 `json:"seed"`
}

// studyCellResult is the wire form of a Sample. Parallel slices instead
// of a float-keyed map: JSON objects cannot key on float64, and Go's
// float64 JSON round-trip is exact, so estimates survive the wire
// bit-identically (what the fleet/single-process parity guarantee rests
// on).
type studyCellResult struct {
	Levels    []int     `json:"levels"`
	Quantiles []float64 `json:"quantiles"`
	Estimates []float64 `json:"estimates"`
}

// StudyCellRunner executes study cells on a fleet agent. The Study must
// be configured identically on every agent and on the coordinator (same
// Base, Factors, rates, durations, Quantiles): the cell payload carries
// only levels and seed, and each experiment is a deterministic function
// of (Study config, levels, seed) — which is exactly why a fleet
// campaign reproduces a single-process campaign bit for bit.
type StudyCellRunner struct {
	Study *Study
}

// RunCell implements fleet.CellRunner.
func (r *StudyCellRunner) RunCell(ctx context.Context, cell wire.Cell, progress fleet.ProgressFunc) (wire.CellDone, error) {
	if cell.Kind != StudyCellKind {
		return wire.CellDone{}, fmt.Errorf("runner: unexpected cell kind %q", cell.Kind)
	}
	var p studyCellPayload
	if err := json.Unmarshal(cell.Payload, &p); err != nil {
		return wire.CellDone{}, fmt.Errorf("runner: decode study cell: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return wire.CellDone{}, err
	}
	sample, err := r.Study.RunConfig(p.Levels, p.Seed)
	if err != nil {
		return wire.CellDone{}, err
	}
	out := studyCellResult{
		Levels:    sample.Levels,
		Quantiles: append([]float64(nil), r.Study.Quantiles...),
		Estimates: make([]float64, len(r.Study.Quantiles)),
	}
	for i, q := range r.Study.Quantiles {
		out.Estimates[i] = sample.Quantiles[q]
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return wire.CellDone{}, err
	}
	return wire.CellDone{Payload: raw}, nil
}

// FleetCells expands the study into its randomized schedule of fleet
// cells — the exact schedule Run would execute locally: the same
// Permutations × Replicates expansion, the same Seed-driven shuffle, the
// same per-index seed derivation. Cell IDs encode the schedule index, so
// they are idempotent across re-dispatch after agent loss.
func (s *Study) FleetCells() ([]wire.Cell, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	schedule := s.schedule()
	cells := make([]wire.Cell, len(schedule))
	for i, levels := range schedule {
		raw, err := json.Marshal(studyCellPayload{Levels: levels, Seed: s.Seed + uint64(i)*7919 + 1})
		if err != nil {
			return nil, err
		}
		cells[i] = wire.Cell{
			ID:      fmt.Sprintf("study-%d-%s", i, LevelsKey(levels)),
			Seq:     i,
			Kind:    StudyCellKind,
			Payload: raw,
		}
	}
	return cells, nil
}

// RunFleet executes the campaign across a fleet instead of the local
// worker pool: cells are sharded over the coordinator's live agents
// (queue mode — agents pull the next cell as they finish) and results
// commit in schedule order. Because every experiment is a deterministic
// function of (config, levels, seed) and estimates cross the wire with
// exact float64 round-tripping, the returned samples are bit-identical
// to s.Run with the same Seed, for any fleet size and any completion
// order.
//
// CollectAnatomy is not supported over a fleet (per-request phase
// vectors stay agent-local); configure it off for fleet campaigns.
func (s *Study) RunFleet(ctx context.Context, co *fleet.Coordinator) (*Result, error) {
	if s.CollectAnatomy {
		return nil, fmt.Errorf("runner: CollectAnatomy is not supported over a fleet")
	}
	cells, err := s.FleetCells()
	if err != nil {
		return nil, err
	}

	totalG := s.Telemetry.Gauge("runner.experiments_total")
	doneG := s.Telemetry.Gauge("runner.experiments_done")
	totalG.Set(int64(len(cells)))
	doneG.Set(0)

	results, err := co.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}

	res := &Result{Quantiles: append([]float64(nil), s.Quantiles...)}
	for _, f := range s.Factors {
		res.Factors = append(res.Factors, f.Name)
	}
	for i, r := range results {
		var cr studyCellResult
		if err := json.Unmarshal(r.Done.Payload, &cr); err != nil {
			return nil, fmt.Errorf("runner: decode result for cell %q: %w", cells[i].ID, err)
		}
		if len(cr.Estimates) != len(cr.Quantiles) {
			return nil, fmt.Errorf("runner: cell %q returned %d estimates for %d quantiles", cells[i].ID, len(cr.Estimates), len(cr.Quantiles))
		}
		sample := Sample{Levels: cr.Levels, Quantiles: make(map[float64]float64, len(cr.Quantiles))}
		for j, q := range cr.Quantiles {
			sample.Quantiles[q] = cr.Estimates[j]
		}
		res.Samples = append(res.Samples, sample)
		doneG.Set(int64(i + 1))
		if s.Progress != nil {
			s.Progress(i+1, len(cells))
		}
	}
	return res, nil
}

// schedule builds the randomized experiment order (shared by Run and
// FleetCells so both execution paths run the identical campaign).
func (s *Study) schedule() [][]int {
	perms := Permutations(len(s.Factors))
	var schedule [][]int
	for r := 0; r < s.Replicates; r++ {
		schedule = append(schedule, perms...)
	}
	rng := dist.NewRNG(s.Seed)
	rng.Shuffle(len(schedule), func(i, j int) { schedule[i], schedule[j] = schedule[j], schedule[i] })
	return schedule
}
