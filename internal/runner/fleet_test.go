package runner

import (
	"context"
	"reflect"
	"testing"
	"time"

	"treadmill/internal/fleet"
)

func fleetStudy() *Study {
	s := smallStudy()
	// Shorter sim per experiment: the parity test runs the campaign twice
	// (locally and over the fleet).
	s.Duration = 0.06
	s.Warmup = 0.02
	s.Replicates = 2
	return s
}

func loopbackFor(t *testing.T, s *Study, n int) *fleet.Loopback {
	t.Helper()
	runners := make([]fleet.CellRunner, n)
	for i := range runners {
		// Each agent gets its own Study value with the identical
		// configuration, as separate agent processes would.
		agentStudy := *s
		runners[i] = &StudyCellRunner{Study: &agentStudy}
	}
	lb, err := fleet.NewLoopback(fleet.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		LossTimeout:       5 * time.Second, // experiments run long; agents heartbeat through them
	}, runners)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lb.Close() })
	return lb
}

// TestFleetParityWithSingleProcess is the subsystem's acceptance
// criterion: a factorial campaign sharded over 4 loopback agents must
// produce bit-identical samples to the same campaign run single-process
// with the same seed — same schedule, same per-run seeds, exact float64
// round-trip over the wire, ordered commit at the coordinator.
func TestFleetParityWithSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := fleetStudy()
	local, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	lb := loopbackFor(t, s, 4)
	dist, err := s.RunFleet(context.Background(), lb.Coord)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(local.Factors, dist.Factors) {
		t.Fatalf("factors differ: %v vs %v", local.Factors, dist.Factors)
	}
	if !reflect.DeepEqual(local.Quantiles, dist.Quantiles) {
		t.Fatalf("quantiles differ: %v vs %v", local.Quantiles, dist.Quantiles)
	}
	if len(local.Samples) != len(dist.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(local.Samples), len(dist.Samples))
	}
	if !reflect.DeepEqual(local.Samples, dist.Samples) {
		for i := range local.Samples {
			if !reflect.DeepEqual(local.Samples[i], dist.Samples[i]) {
				t.Fatalf("sample %d differs:\nlocal: %+v\nfleet: %+v", i, local.Samples[i], dist.Samples[i])
			}
		}
		t.Fatal("samples differ")
	}
}

// TestFleetParityAcrossFleetSizes: the merged campaign must not depend on
// how many agents it was sharded over.
func TestFleetParityAcrossFleetSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := fleetStudy()
	s.Replicates = 1

	var ref *Result
	for _, n := range []int{1, 3} {
		lb := loopbackFor(t, s, n)
		res, err := s.RunFleet(context.Background(), lb.Coord)
		if err != nil {
			t.Fatalf("fleet of %d: %v", n, err)
		}
		lb.Close()
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Samples, res.Samples) {
			t.Fatalf("fleet of %d produced different samples than fleet of 1", n)
		}
	}
}

func TestFleetCellsDeterministic(t *testing.T) {
	s := fleetStudy()
	a, err := s.FleetCells()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.FleetCells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("FleetCells is not deterministic")
	}
	if len(a) != 4*s.Replicates {
		t.Fatalf("%d cells, want %d", len(a), 4*s.Replicates)
	}
	seen := map[string]bool{}
	for _, c := range a {
		if seen[c.ID] {
			t.Fatalf("duplicate cell ID %q", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestRunFleetRejectsAnatomy(t *testing.T) {
	s := fleetStudy()
	s.CollectAnatomy = true
	lb := loopbackFor(t, fleetStudy(), 1)
	if _, err := s.RunFleet(context.Background(), lb.Coord); err == nil {
		t.Fatal("expected CollectAnatomy rejection")
	}
}
