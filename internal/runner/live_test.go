package runner

import (
	"context"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"treadmill/internal/anatomy"
	"treadmill/internal/telemetry"
)

// tinyLiveFactors keeps the live-campaign test fast: two load-shape factors,
// no runtime-knob changes, 4 cells total.
func tinyLiveFactors() []LiveFactor {
	return []LiveFactor{
		{
			Name: "conns", Low: "1", High: "2",
			Apply: func(k *LiveKnobs, level int) { k.Conns = 1 + level },
		},
		{
			Name: "valuesize", Low: "64B", High: "1KiB",
			Apply: func(k *LiveKnobs, level int) {
				if level == 1 {
					k.ValueSize = 1024
				}
			},
		},
	}
}

// TestLiveStudySmoke runs a minimal live campaign over loopback and checks
// the Result shape: one sample per scheduled experiment with positive
// quantiles, per-cell anatomy tagged live, and restored runtime knobs.
func TestLiveStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live campaign burns wall clock")
	}
	origProcs := runtime.GOMAXPROCS(0)
	origGC := debug.SetGCPercent(100)
	debug.SetGCPercent(origGC)

	reg := telemetry.New()
	s := &LiveStudy{
		Factors:        tinyLiveFactors(),
		TotalRate:      2000,
		Duration:       80 * time.Millisecond,
		Warmup:         20 * time.Millisecond,
		Replicates:     1,
		Quantiles:      []float64{0.5, 0.99},
		Seed:           7,
		Telemetry:      reg,
		CollectAnatomy: true,
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := runtime.GOMAXPROCS(0); got != origProcs {
		t.Errorf("GOMAXPROCS not restored: %d != %d", got, origProcs)
	}
	if got := debug.SetGCPercent(origGC); got != origGC {
		t.Errorf("GOGC not restored: %d != %d", got, origGC)
	}

	if len(res.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(res.Samples))
	}
	for i, smp := range res.Samples {
		p50, p99 := smp.Quantiles[0.5], smp.Quantiles[0.99]
		if !(p50 > 0) || !(p99 >= p50) {
			t.Errorf("sample %d: p50=%g p99=%g", i, p50, p99)
		}
	}
	if len(res.Anatomy) != 4 {
		t.Fatalf("anatomy cells = %d, want 4", len(res.Anatomy))
	}
	for key, b := range res.Anatomy {
		if b.Source != anatomy.SourceLive {
			t.Errorf("cell %s: source %q", key, b.Source)
		}
		if b.Requests == 0 {
			t.Errorf("cell %s: empty breakdown", key)
		}
		// Live trailers must split the wire span into server phases.
		srvWall := b.Overall.Mean[anatomy.SrvParse] + b.Overall.Mean[anatomy.SrvStore] +
			b.Overall.Mean[anatomy.SrvSerialize] + b.Overall.Mean[anatomy.SrvWrite]
		if srvWall <= 0 {
			t.Errorf("cell %s: no server-derived spans", key)
		}
	}
	// The campaign gauges report completion.
	snap := reg.Snapshot()
	if snap.Gauges["runner.experiments_done"] != 4 || snap.Gauges["runner.experiments_total"] != 4 {
		t.Errorf("progress gauges: %+v", snap.Gauges)
	}
}

// TestLiveStudyValidate covers rejection of malformed campaigns.
func TestLiveStudyValidate(t *testing.T) {
	base := func() *LiveStudy {
		return &LiveStudy{
			Factors: tinyLiveFactors(), TotalRate: 1000,
			Duration: time.Millisecond, Replicates: 1, Quantiles: []float64{0.5},
		}
	}
	cases := map[string]func(*LiveStudy){
		"no factors":   func(s *LiveStudy) { s.Factors = nil },
		"zero rate":    func(s *LiveStudy) { s.TotalRate = 0 },
		"no duration":  func(s *LiveStudy) { s.Duration = 0 },
		"no replicate": func(s *LiveStudy) { s.Replicates = 0 },
		"no quantiles": func(s *LiveStudy) { s.Quantiles = nil },
	}
	for name, mutate := range cases {
		s := base()
		mutate(s)
		if _, err := s.Run(context.Background()); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
