// Package runner drives the tail-latency attribution study (paper §IV-V):
// a 2-level full factorial over the four hardware factors (Table III),
// with randomized experiment order, at least 30 replicates per
// permutation, per-experiment quantile extraction via the Treadmill
// procedure, and quantile-regression fits over the collected samples.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"

	"treadmill/internal/agg"
	"treadmill/internal/anatomy"
	"treadmill/internal/dist"
	"treadmill/internal/quantreg"
	"treadmill/internal/sim"
	"treadmill/internal/stats"
	"treadmill/internal/telemetry"
)

// Factor is one 2-level experimental factor.
type Factor struct {
	Name string
	// Low and High label the two levels as in the paper's Table III.
	Low, High string
	// Apply configures a cluster for the given level (0 or 1).
	Apply func(cfg *sim.ClusterConfig, level int)
}

// PaperFactors returns the paper's four factors with their Table III
// levels, mapped onto the simulator's knobs.
func PaperFactors() []Factor {
	return []Factor{
		{
			Name: "numa", Low: "same-node", High: "interleave",
			Apply: func(cfg *sim.ClusterConfig, level int) {
				if level == 0 {
					cfg.Server.NUMA = sim.NUMASameNode
				} else {
					cfg.Server.NUMA = sim.NUMAInterleave
				}
			},
		},
		{
			Name: "turbo", Low: "off", High: "on",
			Apply: func(cfg *sim.ClusterConfig, level int) {
				cfg.Server.CPU.TurboEnabled = level == 1
			},
		},
		{
			Name: "dvfs", Low: "ondemand", High: "performance",
			Apply: func(cfg *sim.ClusterConfig, level int) {
				if level == 0 {
					cfg.Server.CPU.Governor = sim.Ondemand
				} else {
					cfg.Server.CPU.Governor = sim.Performance
				}
			},
		},
		{
			Name: "nic", Low: "same-node", High: "all-nodes",
			Apply: func(cfg *sim.ClusterConfig, level int) {
				if level == 0 {
					cfg.Server.NICAffinity = sim.NICSameNode
				} else {
					cfg.Server.NICAffinity = sim.NICAllNodes
				}
			},
		},
	}
}

// Permutations enumerates all 2^k level assignments.
func Permutations(k int) [][]int {
	out := make([][]int, 0, 1<<k)
	for mask := 0; mask < 1<<k; mask++ {
		levels := make([]int, k)
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				levels[i] = 1
			}
		}
		out = append(out, levels)
	}
	return out
}

// Sample is one experiment outcome: the factor levels and the measured
// latency quantiles (per the Treadmill per-instance aggregation).
type Sample struct {
	Levels    []int
	Quantiles map[float64]float64
}

// Study configures the attribution experiment campaign.
type Study struct {
	// Base is the cluster template (workload, client fleet, service
	// model); factor Apply functions mutate copies of it.
	Base sim.ClusterConfig
	// Factors are the experimental factors (default: PaperFactors).
	Factors []Factor
	// TotalRate is the offered load, split evenly over the clients.
	TotalRate float64
	// ConnsPerClient is each client's connection count.
	ConnsPerClient int
	// Duration / Warmup are simulated seconds per experiment.
	Duration, Warmup float64
	// Replicates is the number of experiments per permutation (the paper
	// uses >= 30).
	Replicates int
	// Quantiles to extract per experiment.
	Quantiles []float64
	// Seed drives experiment-order randomization and per-run seeds.
	Seed uint64
	// Progress, when non-nil, receives (done, total) after each
	// experiment.
	Progress func(done, total int)
	// Telemetry, when non-nil, exposes campaign progress as live gauges
	// (runner.experiments_done, runner.experiments_total) so a long
	// full-scale campaign can be watched over the exposition endpoint.
	Telemetry *telemetry.Registry
	// Workers bounds how many experiments run concurrently. Each experiment
	// is an isolated, seed-deterministic simulation, so the campaign is
	// embarrassingly parallel; results are committed in schedule order, so
	// Result, anatomy breakdowns, journal events, and Progress callbacks
	// are bit-identical for every worker count. 0 means GOMAXPROCS.
	Workers int
	// CollectAnatomy accumulates every request's phase decomposition into
	// one tail-vs-body breakdown per factorial cell (Result.Anatomy) —
	// the mechanistic complement to the regression's statistical
	// attribution.
	CollectAnatomy bool
	// Journal, when non-nil (and CollectAnatomy set), receives one
	// "anatomy" event per factorial cell after the campaign.
	Journal *telemetry.Journal
}

func (s *Study) validate() error {
	if len(s.Factors) == 0 || len(s.Factors) > 8 {
		return fmt.Errorf("runner: need 1-8 factors, got %d", len(s.Factors))
	}
	if s.TotalRate <= 0 || s.ConnsPerClient < 1 || s.Duration <= 0 || s.Warmup < 0 {
		return fmt.Errorf("runner: need positive rate/conns/duration")
	}
	if s.Replicates < 1 {
		return fmt.Errorf("runner: need >= 1 replicate")
	}
	if len(s.Quantiles) == 0 {
		return fmt.Errorf("runner: need at least one quantile")
	}
	if len(s.Base.Clients) == 0 {
		return fmt.Errorf("runner: base cluster needs clients")
	}
	return nil
}

// Result is a completed campaign.
type Result struct {
	Factors   []string
	Quantiles []float64
	Samples   []Sample
	// Anatomy maps each factorial cell (LevelsKey) to its tail-vs-body
	// phase breakdown, merged over the cell's replicates. Nil unless the
	// study set CollectAnatomy.
	Anatomy map[string]*anatomy.Breakdown
}

// anatomyObs is one buffered (total latency, phase vector) observation.
// Workers record into per-run buffers; the committer replays buffers into
// the per-cell aggregators in schedule order, so the accumulated floating-
// point sums are bit-identical to a sequential campaign.
type anatomyObs struct {
	total float64
	v     anatomy.Vec
}

// runOutcome carries one finished experiment from a worker to the ordered
// committer.
type runOutcome struct {
	idx    int
	sample Sample
	obs    []anatomyObs
	err    error
}

// workers resolves the configured pool size against the schedule length.
func (s *Study) workers(n int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes the campaign: Replicates × 2^k experiments in randomized
// order (preserving independence between consecutive experiments, §V-A).
//
// Experiments run on a bounded worker pool (see Workers); every run is an
// isolated simulation with a schedule-index-derived seed, and outcomes are
// committed in schedule order, so the returned Result — samples, per-cell
// anatomy, journal event sequence, Progress callbacks — is bit-identical
// for any worker count. The first failing run cancels the pool; remaining
// workers finish their in-flight experiment and exit, and Run returns only
// after every worker has stopped (no goroutine leaks).
func (s *Study) Run(ctx context.Context) (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	// The randomized schedule (each permutation Replicates times, order
	// shuffled) is shared with FleetCells so local and fleet execution
	// run the identical campaign.
	schedule := s.schedule()

	res := &Result{Quantiles: append([]float64(nil), s.Quantiles...)}
	for _, f := range s.Factors {
		res.Factors = append(res.Factors, f.Name)
	}
	doneG := s.Telemetry.Gauge("runner.experiments_done")
	totalG := s.Telemetry.Gauge("runner.experiments_total")
	inflightG := s.Telemetry.Gauge("runner.experiments_inflight")
	workersG := s.Telemetry.Gauge("runner.workers")
	totalG.Set(int64(len(schedule)))

	workers := s.workers(len(schedule))
	workersG.Set(int64(workers))

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the schedule length so workers never block on send: the
	// pool drains cleanly even when the committer stops consuming early.
	outcomes := make(chan runOutcome, len(schedule))
	var nextIdx int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&nextIdx, 1))
				if i >= len(schedule) || cctx.Err() != nil {
					return
				}
				inflightG.Add(1)
				var buf []anatomyObs
				record := func(total float64, v anatomy.Vec) {
					buf = append(buf, anatomyObs{total, v})
				}
				if !s.CollectAnatomy {
					record = nil
				}
				// Tag the worker goroutine with the factorial cell for the
				// duration of the experiment so CPU profiles of a campaign
				// attribute samples to cells (pprof -tagfocus study_cell=...).
				var sample Sample
				var err error
				pprof.Do(cctx, pprof.Labels("study_cell", LevelsKey(schedule[i])), func(context.Context) {
					sample, err = s.runConfig(schedule[i], s.Seed+uint64(i)*7919+1, record)
				})
				inflightG.Add(-1)
				outcomes <- runOutcome{idx: i, sample: sample, obs: buf, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Ordered commit: outcomes arrive in completion order but are applied
	// in schedule order, which keeps samples, anatomy accumulation order,
	// progress counts, and gauges deterministic (and monotone) under
	// out-of-order completion.
	var cellAggs map[string]*anatomy.Aggregator
	if s.CollectAnatomy {
		cellAggs = make(map[string]*anatomy.Aggregator)
	}
	reorder := make(map[int]runOutcome)
	nextCommit := 0
	errIdx := -1
	var firstErr error
	for out := range outcomes {
		if out.err != nil {
			// Keep the lowest-index failure (what a sequential campaign
			// would have hit first among the runs that executed).
			if errIdx < 0 || out.idx < errIdx {
				errIdx = out.idx
				firstErr = out.err
			}
			cancel()
			continue
		}
		reorder[out.idx] = out
		for {
			o, ok := reorder[nextCommit]
			if !ok {
				break
			}
			delete(reorder, nextCommit)
			res.Samples = append(res.Samples, o.sample)
			if cellAggs != nil {
				key := LevelsKey(schedule[o.idx])
				cellAgg := cellAggs[key]
				if cellAgg == nil {
					var err error
					if cellAgg, err = anatomy.NewAggregator(anatomy.DefaultConfig()); err != nil {
						cancel()
						wg.Wait()
						return nil, err
					}
					cellAggs[key] = cellAgg
				}
				for _, ob := range o.obs {
					cellAgg.Record(ob.total, ob.v)
				}
			}
			nextCommit++
			doneG.Set(int64(nextCommit))
			if s.Progress != nil {
				s.Progress(nextCommit, len(schedule))
			}
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("runner: experiment %d (levels %v): %w", errIdx, schedule[errIdx], firstErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if cellAggs != nil {
		res.Anatomy = make(map[string]*anatomy.Breakdown, len(cellAggs))
		keys := make([]string, 0, len(cellAggs))
		for key := range cellAggs {
			keys = append(keys, key)
		}
		// Sorted cell order keeps the journal's anatomy event sequence
		// deterministic (map iteration order is not).
		sort.Strings(keys)
		for _, key := range keys {
			b := cellAggs[key].Finalize()
			res.Anatomy[key] = b
			if s.Journal != nil {
				if err := s.Journal.Emit(telemetry.Event{
					Kind:    telemetry.EventAnatomy,
					Anatomy: b.Record("cell " + key),
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return res, nil
}

// RunConfig performs one experiment: fresh cluster, configured levels,
// open-loop load, per-instance quantile extraction, mean combination. It
// is exported so the tuning evaluation (Fig. 12) can replay individual
// configurations outside a full campaign — such replays deliberately do
// not feed the per-cell anatomy aggregation.
func (s *Study) RunConfig(levels []int, seed uint64) (Sample, error) {
	return s.runConfig(levels, seed, nil)
}

// runConfig is RunConfig with an optional record callback that receives
// every post-warmup request's (total latency, phase vector) pair, in
// completion order. Run buffers these per run and replays them into the
// per-cell aggregators in schedule order.
func (s *Study) runConfig(levels []int, seed uint64, record func(total float64, v anatomy.Vec)) (Sample, error) {
	cfg := s.Base
	// Deep-enough copy of the mutable parts factor Apply functions touch.
	cfg.Clients = append([]sim.ClientSpec(nil), s.Base.Clients...)
	for i, f := range s.Factors {
		f.Apply(&cfg, levels[i])
	}
	cfg.Seed = seed
	cluster, err := sim.NewCluster(cfg)
	if err != nil {
		return Sample{}, err
	}
	perClient := make([][]float64, len(cluster.Clients))
	for i, c := range cluster.Clients {
		i := i
		c.OnComplete = func(req *sim.Request) {
			if req.Created >= s.Warmup {
				perClient[i] = append(perClient[i], req.MeasuredLatency())
				if record != nil {
					record(req.MeasuredLatency(), req.Phases)
				}
			}
		}
		if err := c.StartOpenLoop(s.TotalRate/float64(len(cluster.Clients)), s.ConnsPerClient); err != nil {
			return Sample{}, err
		}
	}
	cluster.Run(s.Warmup + s.Duration)

	srcs := make([]agg.QuantileSource, len(perClient))
	for i, samples := range perClient {
		if len(samples) == 0 {
			return Sample{}, fmt.Errorf("client %d produced no samples", i)
		}
		srcs[i] = agg.Samples(samples)
	}
	out := Sample{Levels: append([]int(nil), levels...), Quantiles: make(map[float64]float64, len(s.Quantiles))}
	for _, q := range s.Quantiles {
		v, err := agg.PerInstance(srcs, q, agg.Mean)
		if err != nil {
			return Sample{}, err
		}
		out.Quantiles[q] = v
	}
	return out, nil
}

// Fit runs quantile regression of the tau-quantile samples on the full
// factorial model, with the paper's data perturbation and bootstrap
// inference.
func (r *Result) Fit(tau float64, bootstrap int, seed uint64) (*quantreg.Result, error) {
	model, err := quantreg.FullFactorialModel(r.Factors)
	if err != nil {
		return nil, err
	}
	x := make([][]float64, len(r.Samples))
	y := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		row := make([]float64, len(s.Levels))
		for j, l := range s.Levels {
			row[j] = float64(l)
		}
		x[i] = row
		v, ok := s.Quantiles[tau]
		if !ok {
			return nil, fmt.Errorf("runner: sample %d missing quantile %g", i, tau)
		}
		y[i] = v
	}
	// The paper perturbs with 0.01 standard deviations to keep the
	// optimizer off degenerate vertices; scale that to the response.
	perturb := 0.01 * stats.StdDev(y)
	return quantreg.Fit(model, x, y, tau, quantreg.Options{
		Solver:           quantreg.IRLS,
		BootstrapSamples: bootstrap,
		PerturbStdDev:    perturb,
		RNG:              dist.NewRNG(seed),
		// The campaign replicates every factorial cell, so stratified
		// resampling keeps each bootstrap refit full rank even at small
		// replicate counts.
		StratifiedBootstrap: true,
	})
}

// ConfigQuantiles returns the observed mean quantile for each permutation,
// keyed by the permutation's level vector (for Figs. 7 and 9).
func (r *Result) ConfigQuantiles(tau float64) map[string][]float64 {
	out := make(map[string][]float64)
	for _, s := range r.Samples {
		key := LevelsKey(s.Levels)
		out[key] = append(out[key], s.Quantiles[tau])
	}
	return out
}

// LevelsKey renders a level vector as a stable map key like "0101".
func LevelsKey(levels []int) string {
	b := make([]byte, len(levels))
	for i, l := range levels {
		b[i] = byte('0' + l)
	}
	return string(b)
}

// MarginalImpact computes Fig. 8/10: the average latency change from
// turning each factor to high level, assuming all other factors are
// equally likely low or high. With a fitted model this is the mean over
// all 2^(k-1) co-configurations of (predict(high) − predict(low)).
func MarginalImpact(fit *quantreg.Result, factors []string) (map[string]float64, error) {
	k := len(factors)
	out := make(map[string]float64, k)
	for fi := range factors {
		total := 0.0
		count := 0
		for mask := 0; mask < 1<<k; mask++ {
			if mask&(1<<fi) != 0 {
				continue // enumerate co-configurations with factor fi low
			}
			row := make([]float64, k)
			for j := 0; j < k; j++ {
				if mask&(1<<j) != 0 {
					row[j] = 1
				}
			}
			lo, err := fit.Predict(row)
			if err != nil {
				return nil, err
			}
			row[fi] = 1
			hi, err := fit.Predict(row)
			if err != nil {
				return nil, err
			}
			total += hi - lo
			count++
		}
		out[factors[fi]] = total / float64(count)
	}
	return out, nil
}

// BestConfig searches all permutations for the lowest predicted
// tau-quantile latency (the Fig. 12 tuning step).
func BestConfig(fit *quantreg.Result, k int) ([]int, float64, error) {
	best := []int(nil)
	bestVal := 0.0
	for _, levels := range Permutations(k) {
		row := make([]float64, k)
		for i, l := range levels {
			row[i] = float64(l)
		}
		v, err := fit.Predict(row)
		if err != nil {
			return nil, 0, err
		}
		if best == nil || v < bestVal {
			best = levels
			bestVal = v
		}
	}
	return best, bestVal, nil
}
