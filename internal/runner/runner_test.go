package runner

import (
	"context"
	"testing"

	"treadmill/internal/dist"
	"treadmill/internal/quantreg"
	"treadmill/internal/sim"
)

func TestPermutations(t *testing.T) {
	perms := Permutations(3)
	if len(perms) != 8 {
		t.Fatalf("%d permutations", len(perms))
	}
	seen := map[string]bool{}
	for _, p := range perms {
		if len(p) != 3 {
			t.Fatalf("bad levels %v", p)
		}
		seen[LevelsKey(p)] = true
	}
	if len(seen) != 8 {
		t.Errorf("%d distinct permutations", len(seen))
	}
}

func TestLevelsKey(t *testing.T) {
	if LevelsKey([]int{0, 1, 1, 0}) != "0110" {
		t.Errorf("key = %q", LevelsKey([]int{0, 1, 1, 0}))
	}
	if LevelsKey(nil) != "" {
		t.Error("empty levels should render empty")
	}
}

func TestPaperFactorsApply(t *testing.T) {
	factors := PaperFactors()
	if len(factors) != 4 {
		t.Fatalf("%d factors", len(factors))
	}
	cfg := sim.DefaultClusterConfig(1)
	for i := range factors {
		factors[i].Apply(&cfg, 1)
	}
	if cfg.Server.NUMA != sim.NUMAInterleave ||
		!cfg.Server.CPU.TurboEnabled ||
		cfg.Server.CPU.Governor != sim.Performance ||
		cfg.Server.NICAffinity != sim.NICAllNodes {
		t.Errorf("high levels not applied: %+v", cfg.Server)
	}
	for i := range factors {
		factors[i].Apply(&cfg, 0)
	}
	if cfg.Server.NUMA != sim.NUMASameNode ||
		cfg.Server.CPU.TurboEnabled ||
		cfg.Server.CPU.Governor != sim.Ondemand ||
		cfg.Server.NICAffinity != sim.NICSameNode {
		t.Errorf("low levels not applied: %+v", cfg.Server)
	}
}

func TestStudyValidation(t *testing.T) {
	good := func() *Study {
		return &Study{
			Base:           sim.DefaultClusterConfig(2),
			Factors:        PaperFactors(),
			TotalRate:      100000,
			ConnsPerClient: 4,
			Duration:       0.1,
			Replicates:     1,
			Quantiles:      []float64{0.99},
		}
	}
	muts := []func(*Study){
		func(s *Study) { s.Factors = nil },
		func(s *Study) { s.TotalRate = 0 },
		func(s *Study) { s.ConnsPerClient = 0 },
		func(s *Study) { s.Duration = 0 },
		func(s *Study) { s.Replicates = 0 },
		func(s *Study) { s.Quantiles = nil },
		func(s *Study) { s.Base.Clients = nil },
	}
	for i, mut := range muts {
		s := good()
		mut(s)
		if _, err := s.Run(context.Background()); err == nil {
			t.Errorf("bad study %d accepted", i)
		}
	}
}

// smallStudy is a reduced campaign that still exercises the full pipeline:
// two factors (numa, dvfs), moderate load, short runs.
func smallStudy() *Study {
	paper := PaperFactors()
	return &Study{
		Base:    sim.DefaultClusterConfig(4),
		Factors: []Factor{paper[0], paper[2]},
		// High load: the NUMA penalty only matters once queueing magnifies
		// it (paper Finding 6), so test in the 70% regime the paper uses.
		TotalRate:      700000,
		ConnsPerClient: 8,
		Duration:       0.12,
		Warmup:         0.03,
		Replicates:     3,
		Quantiles:      []float64{0.5, 0.95, 0.99},
		Seed:           11,
	}
}

func TestStudyRunAndFit(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := smallStudy()
	progress := 0
	s.Progress = func(done, total int) {
		progress = done
		if total != 12 {
			t.Fatalf("total = %d, want 12", total)
		}
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 12 { // 2^2 × 3 replicates
		t.Fatalf("%d samples", len(res.Samples))
	}
	if progress != 12 {
		t.Errorf("progress reached %d", progress)
	}
	// Every permutation must appear exactly Replicates times.
	counts := map[string]int{}
	for _, smp := range res.Samples {
		counts[LevelsKey(smp.Levels)]++
		for _, q := range res.Quantiles {
			if smp.Quantiles[q] <= 0 {
				t.Fatalf("non-positive quantile for %v", smp.Levels)
			}
		}
		if smp.Quantiles[0.99] < smp.Quantiles[0.5] {
			t.Fatalf("p99 < p50 for %v", smp.Levels)
		}
	}
	for key, c := range counts {
		if c != 3 {
			t.Errorf("permutation %s ran %d times", key, c)
		}
	}

	fit, err := res.Fit(0.99, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.Coefs) != 4 { // intercept + 2 mains + 1 interaction
		t.Fatalf("%d coefficients", len(fit.Coefs))
	}
	if fit.PseudoR2 < 0.2 {
		t.Errorf("pseudo-R2 = %g; factors should explain latency variance", fit.PseudoR2)
	}
	// NUMA interleave must hurt the tail (positive coefficient), per the
	// simulator mechanism and the paper's Finding 6.
	numa, ok := fit.Coef("numa")
	if !ok {
		t.Fatal("numa coefficient missing")
	}
	if numa.Est <= 0 {
		t.Errorf("numa p99 coefficient = %g, want positive (interleave hurts)", numa.Est)
	}

	// Marginal impacts and best config must be computable.
	marg, err := MarginalImpact(fit, res.Factors)
	if err != nil {
		t.Fatal(err)
	}
	if len(marg) != 2 {
		t.Fatalf("marginal impacts: %v", marg)
	}
	best, bestVal, err := BestConfig(fit, len(res.Factors))
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 2 || bestVal <= 0 {
		t.Errorf("best = %v (%g)", best, bestVal)
	}
	// The best config must predict no worse than the all-low config.
	allLow, _ := fit.Predict([]float64{0, 0})
	if bestVal > allLow+1e-12 {
		t.Errorf("best config %v (%g) worse than all-low (%g)", best, bestVal, allLow)
	}
}

func TestConfigQuantiles(t *testing.T) {
	res := &Result{
		Factors:   []string{"a"},
		Quantiles: []float64{0.99},
		Samples: []Sample{
			{Levels: []int{0}, Quantiles: map[float64]float64{0.99: 1}},
			{Levels: []int{0}, Quantiles: map[float64]float64{0.99: 2}},
			{Levels: []int{1}, Quantiles: map[float64]float64{0.99: 5}},
		},
	}
	cq := res.ConfigQuantiles(0.99)
	if len(cq["0"]) != 2 || len(cq["1"]) != 1 {
		t.Errorf("config quantiles = %v", cq)
	}
}

func TestFitMissingQuantile(t *testing.T) {
	res := &Result{
		Factors:   []string{"a"},
		Quantiles: []float64{0.5},
		Samples: []Sample{
			{Levels: []int{0}, Quantiles: map[float64]float64{0.5: 1}},
			{Levels: []int{1}, Quantiles: map[float64]float64{0.5: 2}},
		},
	}
	if _, err := res.Fit(0.99, 0, 1); err == nil {
		t.Error("missing quantile should error")
	}
}

// syntheticFit builds a quantreg result with known coefficients for
// MarginalImpact/BestConfig unit tests.
func syntheticFit(t *testing.T) *quantreg.Result {
	t.Helper()
	m, err := quantreg.FullFactorialModel([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// y = 100 + 10a − 20b + 5ab exactly.
	rng := dist.NewRNG(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := float64(rng.Intn(2)), float64(rng.Intn(2))
		x = append(x, []float64{a, b})
		y = append(y, 100+10*a-20*b+5*a*b)
	}
	fit, err := quantreg.Fit(m, x, y, 0.5, quantreg.Options{Solver: quantreg.IRLS})
	if err != nil {
		t.Fatal(err)
	}
	return fit
}

func TestMarginalImpactExact(t *testing.T) {
	fit := syntheticFit(t)
	marg, err := MarginalImpact(fit, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// a: effect 10 + 5·E[b] = 12.5; b: −20 + 5·E[a] = −17.5.
	if d := marg["a"] - 12.5; d < -0.5 || d > 0.5 {
		t.Errorf("marginal a = %g, want ~12.5", marg["a"])
	}
	if d := marg["b"] + 17.5; d < -0.5 || d > 0.5 {
		t.Errorf("marginal b = %g, want ~-17.5", marg["b"])
	}
}

func TestBestConfigExact(t *testing.T) {
	fit := syntheticFit(t)
	best, val, err := BestConfig(fit, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum of {100, 110, 80, 95} is a=0, b=1 → 80.
	if LevelsKey(best) != "01" {
		t.Errorf("best = %v", best)
	}
	if val < 79 || val > 81 {
		t.Errorf("best value = %g, want ~80", val)
	}
}
