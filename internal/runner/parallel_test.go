package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"treadmill/internal/sim"
	"treadmill/internal/telemetry"
)

// parityStudy is a small campaign that exercises samples, anatomy, journal
// events, and progress — everything the determinism guarantee covers.
func parityStudy(seed uint64, workers int, journal *telemetry.Journal) *Study {
	paper := PaperFactors()
	return &Study{
		Base:           sim.DefaultClusterConfig(2),
		Factors:        []Factor{paper[0], paper[2]},
		TotalRate:      300000,
		ConnsPerClient: 4,
		Duration:       0.04,
		Warmup:         0.01,
		Replicates:     2,
		Quantiles:      []float64{0.5, 0.99},
		Seed:           seed,
		Workers:        workers,
		CollectAnatomy: true,
		Journal:        journal,
	}
}

// runParity executes one campaign and returns its result, journal bytes,
// and progress trace.
func runParity(t *testing.T, seed uint64, workers int) (*Result, string, []int) {
	t.Helper()
	var buf bytes.Buffer
	journal := telemetry.NewJournal(&buf)
	s := parityStudy(seed, workers, journal)
	var progress []int
	s.Progress = func(done, total int) { progress = append(progress, done) }
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := journal.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	return res, buf.String(), progress
}

// TestStudyRunWorkerParity is the determinism guarantee: for several seeds,
// Study.Run must produce byte-identical results — samples (exact float
// equality), quantiles, per-cell anatomy breakdowns, the journal's anatomy
// event sequence, and the progress trace — for any worker count.
func TestStudyRunWorkerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign parity sweep in -short mode")
	}
	workerCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	for _, seed := range []uint64{1, 42, 911} {
		baseRes, baseJournal, baseProgress := runParity(t, seed, 1)
		for _, w := range workerCounts[1:] {
			res, journal, progress := runParity(t, seed, w)
			if !reflect.DeepEqual(baseRes.Samples, res.Samples) {
				t.Errorf("seed %d workers %d: samples differ from sequential", seed, w)
			}
			if !reflect.DeepEqual(baseRes.Anatomy, res.Anatomy) {
				t.Errorf("seed %d workers %d: anatomy breakdowns differ from sequential", seed, w)
			}
			if journal != baseJournal {
				t.Errorf("seed %d workers %d: journal bytes differ from sequential", seed, w)
			}
			if !reflect.DeepEqual(progress, baseProgress) {
				t.Errorf("seed %d workers %d: progress trace %v != %v", seed, w, progress, baseProgress)
			}
			// Fits consume only Samples, but assert the full chain anyway:
			// identical samples must yield identical coefficients.
			baseFit, err := baseRes.Fit(0.99, 40, seed)
			if err != nil {
				t.Fatal(err)
			}
			fit, err := res.Fit(0.99, 40, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseFit.Coefs, fit.Coefs) {
				t.Errorf("seed %d workers %d: fit coefficients differ", seed, w)
			}
		}
	}
}

// TestProgressAndGaugeMonotonic checks that out-of-order completion cannot
// make the progress callback or the runner.experiments_done gauge go
// backwards: commits are ordered, so both count 1..n exactly.
func TestProgressAndGaugeMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	reg := telemetry.New()
	s := parityStudy(7, 4, nil)
	s.Telemetry = reg
	var progress []int
	var gauges []int64
	doneG := reg.Gauge("runner.experiments_done")
	s.Progress = func(done, total int) {
		progress = append(progress, done)
		gauges = append(gauges, doneG.Value())
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Samples)
	if len(progress) != n {
		t.Fatalf("progress called %d times, want %d", len(progress), n)
	}
	for i, p := range progress {
		if p != i+1 {
			t.Fatalf("progress[%d] = %d, want %d (must be monotone without gaps)", i, p, i+1)
		}
		if gauges[i] != int64(i+1) {
			t.Fatalf("gauge at commit %d = %d, want %d", i, gauges[i], i+1)
		}
	}
	if got := reg.Gauge("runner.experiments_total").Value(); got != int64(n) {
		t.Errorf("experiments_total = %d, want %d", got, n)
	}
	if got := reg.Gauge("runner.experiments_inflight").Value(); got != 0 {
		t.Errorf("experiments_inflight = %d after completion, want 0", got)
	}
	if got := reg.Gauge("runner.workers").Value(); got != 4 {
		t.Errorf("workers gauge = %d, want 4", got)
	}
}

// brokenFactor returns a factor whose high level produces an invalid
// cluster, so roughly half the campaign's runs fail at NewCluster.
func brokenFactor() Factor {
	return Factor{
		Name: "broken", Low: "ok", High: "broken",
		Apply: func(cfg *sim.ClusterConfig, level int) {
			if level == 1 {
				cfg.Server.CPU.Cores = 0 // NewCluster rejects this
			}
		},
	}
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base, in the style of the capture.Prober shutdown tests.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not drain: %d > baseline %d", runtime.NumGoroutine(), base)
}

// TestStudyRunErrorStopsPool checks that a failing run cancels the pool,
// Run reports the failure, and no worker goroutine leaks.
func TestStudyRunErrorStopsPool(t *testing.T) {
	base := runtime.NumGoroutine()
	paper := PaperFactors()
	s := &Study{
		Base:           sim.DefaultClusterConfig(2),
		Factors:        []Factor{paper[0], brokenFactor()},
		TotalRate:      200000,
		ConnsPerClient: 4,
		Duration:       0.02,
		Warmup:         0.005,
		Replicates:     2,
		Quantiles:      []float64{0.99},
		Seed:           3,
		Workers:        4,
	}
	if _, err := s.Run(context.Background()); err == nil {
		t.Fatal("campaign with broken cells should fail")
	}
	waitForGoroutines(t, base)
}

// TestStudyRunContextCancel checks that cancelling the caller's context
// stops the pool cleanly: Run returns the context error and every worker
// exits.
func TestStudyRunContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	s := parityStudy(5, 4, nil)
	done := 0
	s.Progress = func(d, total int) {
		done = d
		if d == 1 {
			cancel() // cancel mid-campaign, with runs still in flight
		}
	}
	_, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done == 0 {
		t.Fatal("expected at least one committed run before cancellation")
	}
	waitForGoroutines(t, base)
	cancel()
}

// BenchmarkStudyRunParallel times the smoke campaign at increasing worker
// counts; on a multi-core machine wall-clock should drop near-linearly
// while the output stays bit-identical.
func BenchmarkStudyRunParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := parityStudy(1, w, nil)
				s.CollectAnatomy = false
				if _, err := s.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
