package dist

import (
	"fmt"
	"math"
)

// MMPP2 is a 2-state Markov-modulated Poisson process generating
// inter-arrival gaps. The process alternates between a base state (0) and a
// burst state (1); while in state i arrivals are Poisson with rate Rate_i,
// and the sojourn in state i is exponential with mean Stay_i seconds. The
// superposition is bursty: gap CV exceeds 1 whenever the two rates differ,
// which is exactly the diurnal/bursty traffic shape production services see
// and Poisson load generators miss (paper pitfall 2).
//
// MMPP2 is stateful (it tracks the modulating chain across calls), so each
// open-loop driver must own its instance. Like every sampler in this
// package it is not safe for concurrent use.
type MMPP2 struct {
	Rate0, Rate1 float64 // arrival rate (1/s) in base and burst state
	Stay0, Stay1 float64 // mean sojourn (s) in base and burst state

	state int // current modulating state, 0 or 1
}

// NewMMPP2 validates the parameters and returns a sampler starting in the
// base state.
func NewMMPP2(rate0, rate1, stay0, stay1 float64) (*MMPP2, error) {
	switch {
	case !(rate0 >= 0) || !(rate1 >= 0) || rate0+rate1 <= 0:
		return nil, fmt.Errorf("dist: MMPP2 rates must be >= 0 with at least one positive, got %g and %g", rate0, rate1)
	case !(stay0 > 0) || !(stay1 > 0):
		return nil, fmt.Errorf("dist: MMPP2 sojourns must be > 0, got %g and %g", stay0, stay1)
	}
	return &MMPP2{Rate0: rate0, Rate1: rate1, Stay0: stay0, Stay1: stay1}, nil
}

// NewMMPP2FromRate builds an MMPP2 whose long-run mean arrival rate equals
// rate, so bursty and Poisson arrivals compare at identical offered load.
// burst is the burst-to-base rate ratio (> 1), burstFrac the stationary
// fraction of time spent in the burst state (in (0,1)), and cycle the mean
// length of one base+burst cycle in seconds.
func NewMMPP2FromRate(rate, burst, burstFrac, cycle float64) (*MMPP2, error) {
	switch {
	case !(rate > 0):
		return nil, fmt.Errorf("dist: MMPP2 mean rate must be > 0, got %g", rate)
	case !(burst > 1):
		return nil, fmt.Errorf("dist: MMPP2 burst ratio must be > 1, got %g", burst)
	case !(burstFrac > 0) || !(burstFrac < 1):
		return nil, fmt.Errorf("dist: MMPP2 burst fraction must be in (0,1), got %g", burstFrac)
	case !(cycle > 0):
		return nil, fmt.Errorf("dist: MMPP2 cycle must be > 0, got %g", cycle)
	}
	// mean rate = r0*(1-f) + burst*r0*f  =>  r0 = rate / (1-f + burst*f)
	r0 := rate / (1 - burstFrac + burst*burstFrac)
	return NewMMPP2(r0, burst*r0, cycle*(1-burstFrac), cycle*burstFrac)
}

// Sample draws the next inter-arrival gap by racing the next arrival
// against the next state switch (competing exponentials); a switch that
// wins restarts the arrival clock at the new state's rate, which is exact
// for Markov modulation.
func (m *MMPP2) Sample(rng *RNG) float64 {
	gap := 0.0
	for {
		rate, stay := m.Rate0, m.Stay0
		if m.state == 1 {
			rate, stay = m.Rate1, m.Stay1
		}
		toSwitch := Exponential{Rate: 1 / stay}.Sample(rng)
		if rate <= 0 {
			// No arrivals in this state: wait out the sojourn.
			gap += toSwitch
			m.state = 1 - m.state
			continue
		}
		toArrival := Exponential{Rate: rate}.Sample(rng)
		if toArrival <= toSwitch {
			return gap + toArrival
		}
		gap += toSwitch
		m.state = 1 - m.state
	}
}

// Mean returns the long-run mean gap, 1 / (stationary mean rate).
func (m *MMPP2) Mean() float64 { return 1 / m.MeanRate() }

// MeanRate returns the stationary mean arrival rate.
func (m *MMPP2) MeanRate() float64 {
	pi1 := m.Stay1 / (m.Stay0 + m.Stay1)
	return m.Rate0*(1-pi1) + m.Rate1*pi1
}

// State reports the modulating state at the instant of the last sampled
// arrival (arrivals do not change state, so this is the state the arrival
// occurred in). Exposed for occupancy tests.
func (m *MMPP2) State() int { return m.state }

// String returns a human-readable description.
func (m *MMPP2) String() string {
	return fmt.Sprintf("mmpp2(r0=%g,r1=%g,stay0=%g,stay1=%g)", m.Rate0, m.Rate1, m.Stay0, m.Stay1)
}

// FlashCrowd generates inter-arrival gaps for a Poisson process whose rate
// steps from BaseRate to Mult×BaseRate during the window
// [Start, Start+Duration) and back — the flash-crowd / breaking-news
// traffic spike. Time is measured from the first Sample call; the sampler
// keeps its own accumulated clock, so each open-loop driver must own its
// instance.
type FlashCrowd struct {
	BaseRate float64 // rate (1/s) outside the crowd window
	Mult     float64 // rate multiplier during the window (> 1)
	Start    float64 // window start, seconds from the stream origin
	Duration float64 // window length in seconds

	t float64 // accumulated stream clock
}

// NewFlashCrowd validates the parameters.
func NewFlashCrowd(baseRate, mult, start, duration float64) (*FlashCrowd, error) {
	switch {
	case !(baseRate > 0):
		return nil, fmt.Errorf("dist: FlashCrowd base rate must be > 0, got %g", baseRate)
	case !(mult > 1):
		return nil, fmt.Errorf("dist: FlashCrowd multiplier must be > 1, got %g", mult)
	case !(start >= 0):
		return nil, fmt.Errorf("dist: FlashCrowd start must be >= 0, got %g", start)
	case !(duration > 0):
		return nil, fmt.Errorf("dist: FlashCrowd duration must be > 0, got %g", duration)
	}
	return &FlashCrowd{BaseRate: baseRate, Mult: mult, Start: start, Duration: duration}, nil
}

// Sample draws the next gap of the piecewise-constant-rate Poisson process.
// A draw that crosses a rate boundary is restarted at the boundary, which
// is exact by memorylessness.
func (f *FlashCrowd) Sample(rng *RNG) float64 {
	t0 := f.t
	for {
		rate := f.BaseRate
		boundary := math.Inf(1)
		switch {
		case f.t < f.Start:
			boundary = f.Start
		case f.t < f.Start+f.Duration:
			rate *= f.Mult
			boundary = f.Start + f.Duration
		}
		gap := Exponential{Rate: rate}.Sample(rng)
		if f.t+gap < boundary {
			f.t += gap
			return f.t - t0
		}
		f.t = boundary
	}
}

// Mean returns the steady-state mean gap outside the crowd window. The
// window deliberately raises offered load above the nominal rate — that
// transient overload is the phenomenon under study, so it is not averaged
// away here.
func (f *FlashCrowd) Mean() float64 { return 1 / f.BaseRate }

// Elapsed returns the sampler's accumulated stream clock, i.e. the arrival
// time of the last sampled event relative to the stream origin.
func (f *FlashCrowd) Elapsed() float64 { return f.t }

// String returns a human-readable description.
func (f *FlashCrowd) String() string {
	return fmt.Sprintf("flash(base=%g,mult=%g,window=[%g,%g))", f.BaseRate, f.Mult, f.Start, f.Start+f.Duration)
}
