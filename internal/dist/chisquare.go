package dist

import (
	"fmt"
	"math"
)

// ChiSquareGoF runs Pearson's chi-square goodness-of-fit test of observed
// category counts against expected category probabilities. Categories whose
// expected count falls below 5 are pooled (in order) into the preceding
// cell, the standard validity fix for sparse tails such as high Zipf ranks.
// It returns the test statistic, the degrees of freedom after pooling, and
// an approximate p-value (Wilson–Hilferty normal approximation to the
// chi-square CDF, accurate to ~1e-3 for dof >= 3).
func ChiSquareGoF(observed []uint64, probs []float64) (stat float64, dof int, p float64, err error) {
	if len(observed) != len(probs) || len(observed) < 2 {
		return 0, 0, 0, fmt.Errorf("dist: chi-square needs matching observed (%d) and probs (%d) with >= 2 cells", len(observed), len(probs))
	}
	var n float64
	var psum float64
	for i, o := range observed {
		if !(probs[i] >= 0) {
			return 0, 0, 0, fmt.Errorf("dist: chi-square prob[%d] = %g invalid: want >= 0", i, probs[i])
		}
		n += float64(o)
		psum += probs[i]
	}
	if n == 0 {
		return 0, 0, 0, fmt.Errorf("dist: chi-square needs observations, got none")
	}
	if math.Abs(psum-1) > 1e-6 {
		return 0, 0, 0, fmt.Errorf("dist: chi-square probs sum to %g, want 1", psum)
	}

	// Pool cells until every pooled cell expects >= 5 observations.
	var obs, exp []float64
	accO, accE := 0.0, 0.0
	for i := range observed {
		accO += float64(observed[i])
		accE += n * probs[i]
		if accE >= 5 {
			obs = append(obs, accO)
			exp = append(exp, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 || accO > 0 {
		if len(exp) == 0 {
			return 0, 0, 0, fmt.Errorf("dist: chi-square has too few observations (%g) for any cell to expect >= 5", n)
		}
		obs[len(obs)-1] += accO
		exp[len(exp)-1] += accE
	}
	if len(obs) < 2 {
		return 0, 0, 0, fmt.Errorf("dist: chi-square pooled to a single cell; need more observations")
	}

	for i := range obs {
		d := obs[i] - exp[i]
		stat += d * d / exp[i]
	}
	dof = len(obs) - 1
	return stat, dof, chiSquareSF(stat, float64(dof)), nil
}

// chiSquareSF approximates P(X >= x) for X ~ chi-square(k) via the
// Wilson–Hilferty cube-root normalization.
func chiSquareSF(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	z := (math.Cbrt(x/k) - (1 - 2/(9*k))) / math.Sqrt(2/(9*k))
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
