package dist_test

import (
	"math"
	"testing"

	"treadmill/internal/dist"
	"treadmill/internal/oracle"
)

// sampleGaps draws n gaps from s.
func sampleGaps(s dist.Sampler, n int, seed uint64) []float64 {
	rng := dist.NewRNG(seed)
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = s.Sample(rng)
	}
	return gaps
}

func TestMMPP2LongRunRateMatching(t *testing.T) {
	const rate = 5000.0
	for _, tc := range []struct {
		name                    string
		burst, burstFrac, cycle float64
	}{
		{"mild", 2, 0.5, 0.01},
		{"spiky", 8, 0.1, 0.05},
		{"heavy-burst", 4, 0.25, 0.02},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := dist.NewMMPP2FromRate(rate, tc.burst, tc.burstFrac, tc.cycle)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.MeanRate(); math.Abs(got-rate) > 1e-9*rate {
				t.Fatalf("analytic mean rate = %g, want %g", got, rate)
			}
			if got := m.Mean(); math.Abs(got-1/rate) > 1e-9/rate {
				t.Fatalf("Mean() = %g, want %g", got, 1/rate)
			}
			// Empirical long-run rate: n arrivals over sum-of-gaps seconds.
			const n = 400000
			gaps := sampleGaps(m, n, 7)
			elapsed := 0.0
			for _, g := range gaps {
				elapsed += g
			}
			emp := float64(n) / elapsed
			if math.Abs(emp-rate)/rate > 0.02 {
				t.Fatalf("empirical rate = %g, want %g within 2%%", emp, rate)
			}
		})
	}
}

func TestMMPP2BurstOccupancy(t *testing.T) {
	// The fraction of *arrivals* occurring in the burst state is
	// r1·π1 / (r0·π0 + r1·π1), not the time-stationary π1 — bursts are
	// exactly where arrivals concentrate.
	m, err := dist.NewMMPP2FromRate(2000, 6, 0.2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	pi1 := m.Stay1 / (m.Stay0 + m.Stay1)
	want := m.Rate1 * pi1 / (m.Rate0*(1-pi1) + m.Rate1*pi1)

	rng := dist.NewRNG(11)
	const n = 300000
	inBurst := 0
	for i := 0; i < n; i++ {
		m.Sample(rng)
		if m.State() == 1 {
			inBurst++
		}
	}
	got := float64(inBurst) / n
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("burst-state arrival share = %.4f, want %.4f ± 0.02", got, want)
	}
	if want <= pi1 {
		t.Fatalf("sanity: arrival share in burst (%g) should exceed time share (%g)", want, pi1)
	}
}

func TestMMPP2GapCVExceedsOne(t *testing.T) {
	m, err := dist.NewMMPP2FromRate(3000, 8, 0.1, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	gaps := sampleGaps(m, 200000, 3)
	cv, err := oracle.CV(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if cv <= 1.05 {
		t.Fatalf("MMPP2 gap CV = %g, want clearly > 1", cv)
	}
}

// TestArrivalCVCheckFlagsBursty pins the oracle's behavior on bursty
// streams: the Poisson litmus must REJECT an MMPP2 stream (CV band
// excludes 1, from above) while still accepting a true Poisson stream.
func TestArrivalCVCheckFlagsBursty(t *testing.T) {
	m, err := dist.NewMMPP2FromRate(3000, 8, 0.1, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	bursty := sampleGaps(m, 60000, 5)
	cv, band, ok, err := oracle.ArrivalCVCheck(bursty, 0.99, 400, dist.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("ArrivalCVCheck accepted a bursty stream: cv=%g band=%v", cv, band)
	}
	if band.Lo <= 1 {
		t.Fatalf("bursty CV band %v should sit entirely above 1", band)
	}

	poisson := sampleGaps(dist.Exponential{Rate: 3000}, 60000, 5)
	cv, band, ok, err = oracle.ArrivalCVCheck(poisson, 0.99, 400, dist.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("ArrivalCVCheck rejected a Poisson stream: cv=%g band=%v", cv, band)
	}
}

func TestFlashCrowdRateStep(t *testing.T) {
	const (
		base  = 2000.0
		mult  = 5.0
		start = 1.0
		dur   = 0.5
	)
	fc, err := dist.NewFlashCrowd(base, mult, start, dur)
	if err != nil {
		t.Fatal(err)
	}
	if got := fc.Mean(); math.Abs(got-1/base) > 1e-12 {
		t.Fatalf("Mean() = %g, want %g", got, 1/base)
	}
	rng := dist.NewRNG(23)
	var before, during, after int
	for fc.Elapsed() < start+dur+1.0 {
		fc.Sample(rng)
		at := fc.Elapsed()
		switch {
		case at < start:
			before++
		case at < start+dur:
			during++
		default:
			after++
		}
	}
	// Expected counts: base·start, mult·base·dur, base·1.0.
	checks := []struct {
		name string
		got  int
		want float64
	}{
		{"before", before, base * start},
		{"during", during, mult * base * dur},
		{"after", after, base * 1.0},
	}
	for _, c := range checks {
		// 5-sigma Poisson band.
		sigma := math.Sqrt(c.want)
		if math.Abs(float64(c.got)-c.want) > 5*sigma {
			t.Errorf("%s window: %d arrivals, want %.0f ± %.0f", c.name, c.got, c.want, 5*sigma)
		}
	}
}

func TestArrivalParamValidation(t *testing.T) {
	nan := math.NaN()
	if _, err := dist.NewMMPP2(-1, 5, 1, 1); err == nil {
		t.Error("NewMMPP2 accepted negative rate")
	}
	if _, err := dist.NewMMPP2(0, 0, 1, 1); err == nil {
		t.Error("NewMMPP2 accepted all-zero rates")
	}
	if _, err := dist.NewMMPP2(1, 1, 0, 1); err == nil {
		t.Error("NewMMPP2 accepted zero sojourn")
	}
	if _, err := dist.NewMMPP2(1, 1, nan, 1); err == nil {
		t.Error("NewMMPP2 accepted NaN sojourn")
	}
	if _, err := dist.NewMMPP2FromRate(nan, 2, 0.5, 1); err == nil {
		t.Error("NewMMPP2FromRate accepted NaN rate")
	}
	if _, err := dist.NewMMPP2FromRate(100, 1, 0.5, 1); err == nil {
		t.Error("NewMMPP2FromRate accepted burst ratio 1")
	}
	if _, err := dist.NewMMPP2FromRate(100, 2, 1, 1); err == nil {
		t.Error("NewMMPP2FromRate accepted burstFrac 1")
	}
	if _, err := dist.NewFlashCrowd(0, 2, 0, 1); err == nil {
		t.Error("NewFlashCrowd accepted zero base rate")
	}
	if _, err := dist.NewFlashCrowd(100, 1, 0, 1); err == nil {
		t.Error("NewFlashCrowd accepted multiplier 1")
	}
	if _, err := dist.NewFlashCrowd(100, 2, -1, 1); err == nil {
		t.Error("NewFlashCrowd accepted negative start")
	}
	if _, err := dist.NewFlashCrowd(100, 2, 0, nan); err == nil {
		t.Error("NewFlashCrowd accepted NaN duration")
	}
}

func TestZipfChiSquareGoF(t *testing.T) {
	const n = 64
	z, err := dist.NewZipf(n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = z.Prob(i)
	}
	counts := make([]uint64, n)
	rng := dist.NewRNG(31)
	for i := 0; i < 200000; i++ {
		counts[z.Rank(rng)]++
	}
	stat, dof, p, err := dist.ChiSquareGoF(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if dof < 10 {
		t.Fatalf("pooling collapsed to dof=%d; expected a rich table", dof)
	}
	if p < 0.001 {
		t.Fatalf("Zipf sampler fails its own GoF: stat=%g dof=%d p=%g", stat, dof, p)
	}

	// A deliberately wrong hypothesis (uniform) must be crushed.
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1.0 / n
	}
	_, _, p, err = dist.ChiSquareGoF(counts, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("chi-square failed to reject uniform for Zipf data: p=%g", p)
	}
}

func TestZipfSamplerZeroAlloc(t *testing.T) {
	z, err := dist.NewZipf(100000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(41)
	var s dist.Sampler = z
	if allocs := testing.AllocsPerRun(1000, func() { _ = s.Sample(rng) }); allocs != 0 {
		t.Fatalf("Zipf.Sample allocates %g per call, want 0", allocs)
	}
	if z.Mean() <= 0 || z.Mean() >= float64(z.N()) {
		t.Fatalf("Zipf mean rank %g out of range", z.Mean())
	}
}

func TestMMPP2SampleZeroAlloc(t *testing.T) {
	m, err := dist.NewMMPP2FromRate(1000, 4, 0.2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(43)
	if allocs := testing.AllocsPerRun(1000, func() { _ = m.Sample(rng) }); allocs != 0 {
		t.Fatalf("MMPP2.Sample allocates %g per call, want 0", allocs)
	}
}

func TestFlashCrowdZeroAlloc(t *testing.T) {
	fc, err := dist.NewFlashCrowd(1000, 4, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(47)
	if allocs := testing.AllocsPerRun(1000, func() { _ = fc.Sample(rng) }); allocs != 0 {
		t.Fatalf("FlashCrowd.Sample allocates %g per call, want 0", allocs)
	}
}
