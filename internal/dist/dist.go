// Package dist provides seeded random variate generation for the
// distributions Treadmill uses: inter-arrival processes, service times,
// request sizes, and key popularity.
//
// Every sampler in this package is driven by an explicit *RNG so that
// experiments are reproducible under a seed and independent streams can be
// derived for independent components (one stream per simulated client, one
// per server, ...). None of the samplers are safe for concurrent use with a
// shared RNG; give each goroutine its own stream via RNG.Fork.
package dist

import (
	"fmt"
	"math"
)

// RNG is a small, fast, splittable pseudo-random generator
// (xoshiro256**). It is deliberately not the global math/rand source: the
// simulator needs many independent, reproducible streams.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next value. It is used
// for seeding so that nearby seeds produce unrelated streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two generators built from
// different seeds produce statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives a new independent stream from r. The parent stream advances,
// so repeated forks yield distinct children.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// StreamSeed derives the n-th substream seed from seed by walking a
// splitmix64 chain, so components that need many parallel reproducible
// streams (one per load-plane shard, one per bootstrap replicate) can
// derive them independently without sharing an RNG. n must be >= 0.
func StreamSeed(seed uint64, n int) uint64 {
	x := seed ^ 0xd1b54a32d192ed03
	v := splitmix64(&x)
	for i := 0; i < n; i++ {
		v = splitmix64(&x)
	}
	return v
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a sample from the standard normal distribution using the
// Marsaglia polar method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// A Sampler produces one random variate per call. Samplers model service
// times and sizes; values are in the natural unit of the use site (seconds
// for times, bytes for sizes).
type Sampler interface {
	// Sample draws the next variate using rng.
	Sample(rng *RNG) float64
	// Mean returns the distribution mean, used for utilization math.
	Mean() float64
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V float64 }

// Sample implements Sampler.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Mean implements Sampler.
func (c Constant) Mean() float64 { return c.V }

// String returns a human-readable description.
func (c Constant) String() string { return fmt.Sprintf("constant(%g)", c.V) }

// Exponential is the memoryless distribution with the given rate λ.
// Treadmill uses it for open-loop inter-arrival times, matching the Poisson
// arrivals measured in production clusters (paper §III-A).
type Exponential struct{ Rate float64 }

// Sample implements Sampler.
func (e Exponential) Sample(rng *RNG) float64 {
	// Inverse transform; 1-U avoids log(0).
	return -math.Log(1-rng.Float64()) / e.Rate
}

// Mean implements Sampler.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// String returns a human-readable description.
func (e Exponential) String() string { return fmt.Sprintf("exp(rate=%g)", e.Rate) }

// Lognormal has parameters Mu and Sigma of the underlying normal. Service
// times of real key-value servers are well approximated by lognormals.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// Sample implements Sampler.
func (l Lognormal) Sample(rng *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.Normal())
}

// Mean implements Sampler.
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// String returns a human-readable description.
func (l Lognormal) String() string { return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", l.Mu, l.Sigma) }

// LognormalFromMoments builds a Lognormal with the given mean and squared
// coefficient of variation (variance / mean²).
func LognormalFromMoments(mean, cv2 float64) Lognormal {
	sigma2 := math.Log(1 + cv2)
	return Lognormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}
}

// Pareto is the heavy-tailed distribution with scale Xm and shape Alpha.
// It models the occasional very large values (e.g., value sizes) that
// dominate tail behaviour.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Sampler.
func (p Pareto) Sample(rng *RNG) float64 {
	return p.Xm / math.Pow(1-rng.Float64(), 1/p.Alpha)
}

// Mean implements Sampler. It returns +Inf when Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// String returns a human-readable description.
func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Sampler.
func (u Uniform) Sample(rng *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*rng.Float64() }

// Mean implements Sampler.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// String returns a human-readable description.
func (u Uniform) String() string { return fmt.Sprintf("uniform[%g,%g)", u.Lo, u.Hi) }

// Empirical samples from a fixed set of observed values with equal
// probability, reproducing measured workload characteristics.
type Empirical struct {
	values []float64
	mean   float64
}

// NewEmpirical builds an Empirical sampler from values. It panics on an
// empty slice; a workload without observations has no distribution.
func NewEmpirical(values []float64) *Empirical {
	if len(values) == 0 {
		panic("dist: NewEmpirical with no values")
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	sum := 0.0
	for _, v := range cp {
		sum += v
	}
	return &Empirical{values: cp, mean: sum / float64(len(cp))}
}

// Sample implements Sampler.
func (e *Empirical) Sample(rng *RNG) float64 { return e.values[rng.Intn(len(e.values))] }

// Mean implements Sampler.
func (e *Empirical) Mean() float64 { return e.mean }

// Mixture samples from one of several component distributions, chosen with
// the given weights. It models e.g. a GET/SET size mix.
type Mixture struct {
	components []Sampler
	cum        []float64 // cumulative normalized weights
	mean       float64
}

// NewMixture builds a mixture of components with the given weights. Weights
// must be positive and the two slices equal length.
func NewMixture(components []Sampler, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, fmt.Errorf("dist: mixture needs matching non-empty components (%d) and weights (%d)", len(components), len(weights))
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: mixture weight %g must be positive", w)
		}
		total += w
	}
	m := &Mixture{components: components, cum: make([]float64, len(weights))}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		m.cum[i] = acc
		m.mean += w / total * components[i].Mean()
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding
	return m, nil
}

// Sample implements Sampler.
func (m *Mixture) Sample(rng *RNG) float64 {
	u := rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.components[i].Sample(rng)
		}
	}
	return m.components[len(m.components)-1].Sample(rng)
}

// Mean implements Sampler.
func (m *Mixture) Mean() float64 { return m.mean }
