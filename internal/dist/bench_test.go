package dist

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExponentialSample(b *testing.B) {
	r := NewRNG(1)
	e := Exponential{Rate: 1e5}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = e.Sample(r)
	}
	_ = sink
}

func BenchmarkLognormalSample(b *testing.B) {
	r := NewRNG(1)
	l := LognormalFromMoments(100e-6, 1.0)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = l.Sample(r)
	}
	_ = sink
}

func BenchmarkZipfRank(b *testing.B) {
	r := NewRNG(1)
	z, err := NewZipf(100000, 0.99)
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Rank(r)
	}
	_ = sink
}
