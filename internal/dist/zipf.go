package dist

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws integer ranks in [0, N) with probability proportional to
// 1/(rank+1)^S. Key popularity in production key-value stores follows a
// Zipfian law (Atikoglu et al., SIGMETRICS'12), so workload generators use
// this to pick keys.
//
// The implementation precomputes the CDF and samples by binary search,
// which is exact and needs no rejection loop. Building is O(N); sampling is
// O(log N).
type Zipf struct {
	cdf  []float64
	s    float64
	mean float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s. It returns an
// error when n < 1 or s < 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: Zipf needs n >= 1, got %d", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("dist: Zipf needs s >= 0, got %g", s)
	}
	z := &Zipf{cdf: make([]float64, n), s: s}
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = acc
	}
	for i := range z.cdf {
		z.cdf[i] /= acc
	}
	z.cdf[n-1] = 1
	prev := 0.0
	for i, c := range z.cdf {
		z.mean += float64(i) * (c - prev)
		prev = c
	}
	return z, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws the next rank in [0, N).
func (z *Zipf) Rank(rng *RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Sample implements Sampler, returning the drawn rank as a float64 so Zipf
// composes with sampler-typed knobs (token counts, size classes). The path
// allocates nothing: one binary search over the precomputed CDF.
func (z *Zipf) Sample(rng *RNG) float64 { return float64(z.Rank(rng)) }

// Mean implements Sampler: the expected rank, Σ rank·P(rank).
func (z *Zipf) Mean() float64 { return z.mean }

// String returns a human-readable description.
func (z *Zipf) String() string { return fmt.Sprintf("zipf(n=%d,s=%g)", len(z.cdf), z.s) }

// Prob returns the probability of drawing the given rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 0 || rank >= len(z.cdf) {
		return 0
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
