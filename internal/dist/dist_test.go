package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 1000", same)
	}
}

func TestRNGZeroSeedNotDegenerate(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork()
	c2 := parent.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams overlapped %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n, buckets = 200000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d: got %d, want ~%g", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(9)
	const n = 500000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func sampleMean(s Sampler, rng *RNG, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Sample(rng)
	}
	return sum / float64(n)
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{Rate: 4}
	got := sampleMean(e, NewRNG(1), 400000)
	if math.Abs(got-0.25) > 0.005 {
		t.Errorf("exp(4) sample mean = %g, want ~0.25", got)
	}
	if e.Mean() != 0.25 {
		t.Errorf("Mean() = %g, want 0.25", e.Mean())
	}
}

func TestExponentialMemorylessTail(t *testing.T) {
	// P(X > t) should be e^{-rate*t}; check at a couple of points.
	e := Exponential{Rate: 2}
	r := NewRNG(2)
	const n = 300000
	over1, over2 := 0, 0
	for i := 0; i < n; i++ {
		x := e.Sample(r)
		if x > 0.5 {
			over1++
		}
		if x > 1.0 {
			over2++
		}
	}
	if p := float64(over1) / n; math.Abs(p-math.Exp(-1)) > 0.01 {
		t.Errorf("P(X>0.5) = %g, want %g", p, math.Exp(-1))
	}
	if p := float64(over2) / n; math.Abs(p-math.Exp(-2)) > 0.01 {
		t.Errorf("P(X>1) = %g, want %g", p, math.Exp(-2))
	}
}

func TestLognormalFromMoments(t *testing.T) {
	l := LognormalFromMoments(100e-6, 0.5)
	got := sampleMean(l, NewRNG(4), 400000)
	if math.Abs(got-100e-6) > 2e-6 {
		t.Errorf("lognormal sample mean = %g, want ~100e-6", got)
	}
	if math.Abs(l.Mean()-100e-6) > 1e-12 {
		t.Errorf("Mean() = %g, want 100e-6", l.Mean())
	}
}

func TestParetoMean(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 3}
	if math.Abs(p.Mean()-1.5) > 1e-12 {
		t.Fatalf("pareto mean = %g, want 1.5", p.Mean())
	}
	got := sampleMean(p, NewRNG(8), 500000)
	if math.Abs(got-1.5) > 0.05 {
		t.Errorf("pareto sample mean = %g, want ~1.5", got)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 0.9}
	if !math.IsInf(p.Mean(), 1) {
		t.Fatalf("alpha<=1 should have infinite mean, got %g", p.Mean())
	}
}

func TestParetoSupport(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 2}
	r := NewRNG(10)
	for i := 0; i < 10000; i++ {
		if x := p.Sample(r); x < 2 {
			t.Fatalf("pareto sample %g below xm", x)
		}
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 3, Hi: 7}
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		x := u.Sample(r)
		if x < 3 || x >= 7 {
			t.Fatalf("uniform sample %g out of range", x)
		}
	}
	if u.Mean() != 5 {
		t.Errorf("uniform mean = %g, want 5", u.Mean())
	}
}

func TestEmpirical(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 3, 4})
	if e.Mean() != 2.5 {
		t.Fatalf("empirical mean = %g, want 2.5", e.Mean())
	}
	r := NewRNG(13)
	counts := map[float64]int{}
	for i := 0; i < 40000; i++ {
		counts[e.Sample(r)]++
	}
	for _, v := range []float64{1, 2, 3, 4} {
		if c := counts[v]; c < 9000 || c > 11000 {
			t.Errorf("value %g drawn %d times, want ~10000", v, c)
		}
	}
}

func TestEmpiricalPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEmpirical(nil) did not panic")
		}
	}()
	NewEmpirical(nil)
}

func TestEmpiricalCopiesInput(t *testing.T) {
	vals := []float64{5, 5, 5}
	e := NewEmpirical(vals)
	vals[0] = 1000
	if got := e.Sample(NewRNG(1)); got != 5 {
		t.Fatalf("empirical sampler aliased caller slice: got %g", got)
	}
}

func TestMixture(t *testing.T) {
	m, err := NewMixture(
		[]Sampler{Constant{V: 1}, Constant{V: 10}},
		[]float64{9, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean()-1.9) > 1e-12 {
		t.Fatalf("mixture mean = %g, want 1.9", m.Mean())
	}
	r := NewRNG(14)
	tens := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(r) == 10 {
			tens++
		}
	}
	if p := float64(tens) / n; math.Abs(p-0.1) > 0.01 {
		t.Errorf("P(component 2) = %g, want ~0.1", p)
	}
}

func TestMixtureErrors(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should error")
	}
	if _, err := NewMixture([]Sampler{Constant{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := NewMixture([]Sampler{Constant{1}}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestZipfRanksInRange(t *testing.T) {
	z, err := NewZipf(100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(15)
	for i := 0; i < 10000; i++ {
		rank := z.Rank(r)
		if rank < 0 || rank >= 100 {
			t.Fatalf("rank %d out of range", rank)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(16)
	first := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if z.Rank(r) == 0 {
			first++
		}
	}
	want := z.Prob(0)
	if p := float64(first) / n; math.Abs(p-want) > 0.01 {
		t.Errorf("P(rank 0) = %g, want ~%g", p, want)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if p := z.Prob(i); math.Abs(p-0.1) > 1e-9 {
			t.Errorf("s=0 rank %d prob %g, want 0.1", i, p)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z, err := NewZipf(50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < 50; i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Error("out-of-range ranks should have probability 0")
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative s should error")
	}
}

// Property: exponential samples are always positive and finite.
func TestExponentialPositiveProperty(t *testing.T) {
	f := func(seed uint64, rate8 uint8) bool {
		rate := float64(rate8%100) + 0.5
		r := NewRNG(seed)
		e := Exponential{Rate: rate}
		for i := 0; i < 100; i++ {
			x := e.Sample(r)
			if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Perm(n) is always a valid permutation.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mixture samples always come from one of the components.
func TestMixtureSupportProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m, err := NewMixture(
			[]Sampler{Constant{V: 1}, Constant{V: 2}, Constant{V: 3}},
			[]float64{1, 2, 3},
		)
		if err != nil {
			return false
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := m.Sample(r)
			if v != 1 && v != 2 && v != 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
