package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	eng := &Engine{}
	var order []int
	eng.Schedule(3e-3, func() { order = append(order, 3) })
	eng.Schedule(1e-3, func() { order = append(order, 1) })
	eng.Schedule(2e-3, func() { order = append(order, 2) })
	eng.Run(1)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if eng.Processed() != 3 {
		t.Errorf("processed = %d", eng.Processed())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	eng := &Engine{}
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(1e-3, func() { order = append(order, i) })
	}
	eng.Run(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", order)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	eng := &Engine{}
	ran := false
	eng.Schedule(2.0, func() { ran = true })
	eng.Run(1.0)
	if ran {
		t.Error("event beyond horizon ran")
	}
	if eng.Now() != 1.0 {
		t.Errorf("now = %g, want 1.0 (advanced to horizon)", eng.Now())
	}
	if eng.Pending() != 1 {
		t.Errorf("pending = %d", eng.Pending())
	}
	eng.Run(3.0)
	if !ran {
		t.Error("event did not run on extended horizon")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := &Engine{}
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			eng.Schedule(1e-3, tick)
		}
	}
	eng.Schedule(1e-3, tick)
	eng.Run(1)
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if got := eng.Now(); got < 0.099 || got > 1.0 {
		t.Errorf("now = %g", got)
	}
}

func TestEngineStep(t *testing.T) {
	eng := &Engine{}
	n := 0
	eng.Schedule(1e-3, func() { n++ })
	eng.Schedule(2e-3, func() { n++ })
	if !eng.Step() || n != 1 {
		t.Fatal("first step failed")
	}
	if !eng.Step() || n != 2 {
		t.Fatal("second step failed")
	}
	if eng.Step() {
		t.Fatal("step on empty queue should return false")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	eng := &Engine{}
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	eng.Schedule(-1, func() {})
}

func TestAtBeforeNowPanics(t *testing.T) {
	eng := &Engine{}
	eng.Schedule(1, func() {})
	eng.Run(1)
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	eng.At(0.5, func() {})
}

func TestCoreExecutionTime(t *testing.T) {
	eng := &Engine{}
	cpu, err := NewCPU(eng, CPUConfig{
		Cores: 1, Sockets: 1, BaseHz: 2e9, MinHz: 2e9, TurboHz: 2e9, Steps: 1,
		Governor: Performance, GovernorTick: 1, UpThreshold: 0.5,
		Ambient: 40, TMax: 95, TTurbo: 65, ThermalC: 60, ThermalK: 2, CorePower: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.Cores[0]
	var doneAt float64
	core.Submit(2e6, func() { doneAt = eng.Now() }) // 2M cycles @ 2GHz = 1ms
	eng.Run(1)
	if doneAt < 0.999e-3 || doneAt > 1.001e-3 {
		t.Fatalf("task finished at %g, want 1ms", doneAt)
	}
}

func TestCoreFIFO(t *testing.T) {
	eng := &Engine{}
	cpu, _ := NewCPU(eng, CPUConfig{
		Cores: 1, Sockets: 1, BaseHz: 1e9, MinHz: 1e9, TurboHz: 1e9, Steps: 1,
		Governor: Performance, GovernorTick: 1, UpThreshold: 0.5,
		Ambient: 40, TMax: 95, TTurbo: 65, ThermalC: 60, ThermalK: 2, CorePower: 8,
	})
	core := cpu.Cores[0]
	var finishes []float64
	for i := 0; i < 3; i++ {
		core.Submit(1e6, func() { finishes = append(finishes, eng.Now()) }) // 1ms each
	}
	if core.QueueLen() != 2 {
		t.Errorf("queue len = %d, want 2", core.QueueLen())
	}
	eng.Run(1)
	want := []float64{1e-3, 2e-3, 3e-3}
	for i, w := range want {
		if diff := finishes[i] - w; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("task %d finished at %g, want %g", i, finishes[i], w)
		}
	}
}

func TestCoreNegativeWorkPanics(t *testing.T) {
	eng := &Engine{}
	cpu, _ := NewCPU(eng, DefaultCPUConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("negative cycles did not panic")
		}
	}()
	cpu.Cores[0].Submit(-5, nil)
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	eng := &Engine{}
	// 1 Gbps, 100µs propagation: a 1250-byte packet serializes in 10µs.
	l, err := NewLink(eng, 1e9, 100e-6)
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2 float64
	l.Send(1250, func() { t1 = eng.Now() })
	l.Send(1250, func() { t2 = eng.Now() })
	eng.Run(1)
	if diff := t1 - 110e-6; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("first delivery at %g, want 110µs", t1)
	}
	// Second packet waits for the first to serialize.
	if diff := t2 - 120e-6; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("second delivery at %g, want 120µs", t2)
	}
	if l.Sent() != 2 {
		t.Errorf("sent = %d", l.Sent())
	}
}

func TestLinkValidation(t *testing.T) {
	eng := &Engine{}
	if _, err := NewLink(eng, 0, 0); err == nil {
		t.Error("zero bandwidth should error")
	}
	if _, err := NewLink(eng, 1e9, -1); err == nil {
		t.Error("negative delay should error")
	}
	l, _ := NewLink(eng, 1e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("zero-size packet should panic")
		}
	}()
	l.Send(0, nil)
}

func TestCPUConfigValidation(t *testing.T) {
	bad := []func(*CPUConfig){
		func(c *CPUConfig) { c.Cores = 3; c.Sockets = 2 },
		func(c *CPUConfig) { c.MinHz = 3e9 },
		func(c *CPUConfig) { c.Steps = 0 },
		func(c *CPUConfig) { c.GovernorTick = 0 },
		func(c *CPUConfig) { c.UpThreshold = 1.5 },
	}
	for i, mut := range bad {
		cfg := DefaultCPUConfig()
		mut(&cfg)
		if _, err := NewCPU(&Engine{}, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGovernorStrings(t *testing.T) {
	if Ondemand.String() != "ondemand" || Performance.String() != "performance" {
		t.Error("governor names wrong")
	}
	if NUMASameNode.String() != "same-node" || NUMAInterleave.String() != "interleave" {
		t.Error("numa names wrong")
	}
	if NICSameNode.String() != "same-node" || NICAllNodes.String() != "all-nodes" {
		t.Error("nic names wrong")
	}
}

func TestLinkQueueDelayAndUtilization(t *testing.T) {
	eng := &Engine{}
	l, err := NewLink(eng, 1e9, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	if l.QueueDelay() != 0 {
		t.Error("idle link should have zero backlog")
	}
	// Queue three 12.5KB packets: 100µs serialization each.
	for i := 0; i < 3; i++ {
		l.Send(12500, nil)
	}
	if d := l.QueueDelay(); d < 299e-6 || d > 301e-6 {
		t.Errorf("backlog = %g, want ~300µs", d)
	}
	eng.Run(1)
	if u := l.Utilization(); u > 0.001 {
		// Utilization over 1 second of sim time with 300µs busy.
		if u < 0.0002 || u > 0.0004 {
			t.Errorf("utilization = %g, want ~0.0003", u)
		}
	}
}

func TestCoreSubmitTimedStartHook(t *testing.T) {
	eng := &Engine{}
	cpu, _ := NewCPU(eng, CPUConfig{
		Cores: 1, Sockets: 1, BaseHz: 1e9, MinHz: 1e9, TurboHz: 1e9, Steps: 1,
		Governor: Performance, GovernorTick: 1, UpThreshold: 0.5,
		Ambient: 40, TMax: 95, TTurbo: 65, ThermalC: 60, ThermalK: 2, CorePower: 8,
	})
	core := cpu.Cores[0]
	var startAt, doneAt float64
	// First task occupies [0, 1ms); second task's start hook must fire at
	// 1ms, not at submission.
	core.Submit(1e6, nil)
	core.SubmitTimed(1e6,
		func() { startAt = eng.Now() },
		func() { doneAt = eng.Now() })
	eng.Run(1)
	if startAt < 0.999e-3 || startAt > 1.001e-3 {
		t.Errorf("start hook at %g, want ~1ms", startAt)
	}
	if doneAt < 1.999e-3 || doneAt > 2.001e-3 {
		t.Errorf("done hook at %g, want ~2ms", doneAt)
	}
}

func TestIdleWakePenaltyOnlyUnderOndemand(t *testing.T) {
	run := func(gov Governor) uint64 {
		eng := &Engine{}
		cfg := DefaultCPUConfig()
		cfg.Cores, cfg.Sockets = 1, 1
		cfg.Governor = gov
		cpu, err := NewCPU(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		core := cpu.Cores[0]
		// Two tasks separated by a gap longer than the sleep threshold.
		core.Submit(1000, nil)
		eng.Run(0.001)
		eng.Schedule(0.01, func() { core.Submit(1000, nil) })
		eng.Run(1)
		return cpu.WakeEvents()
	}
	if got := run(Ondemand); got == 0 {
		t.Error("ondemand core sleeping past the threshold should log a wake event")
	}
	if got := run(Performance); got != 0 {
		t.Errorf("performance governor logged %d wake events, want 0", got)
	}
}

func TestRSSHashSpreadsStructuredIDs(t *testing.T) {
	// Connection IDs come in strides of 1000 per client; the RSS hash must
	// still spread them over the queues.
	counts := make(map[int]int)
	for client := 0; client < 8; client++ {
		for k := 0; k < 8; k++ {
			counts[rssHash(client*1000+k)%16]++
		}
	}
	if len(counts) < 12 {
		t.Errorf("64 structured conn IDs hit only %d/16 RSS queues", len(counts))
	}
	for q, c := range counts {
		if c > 12 {
			t.Errorf("queue %d received %d/64 connections; hash clustering", q, c)
		}
	}
}
