package sim

import "treadmill/internal/anatomy"

// Request is one simulated RPC with the full set of measurement-point
// timestamps. The different "tools" in the paper disagree exactly because
// they read different pairs of these timestamps:
//
//   - a load tester measures ClientDone − Created (user space to user
//     space, including any client-side queueing),
//   - tcpdump measures RespAtClientNIC − ReqAtClientNIC (the wire view,
//     paper §III-C).
type Request struct {
	ID uint64
	// ConnID identifies the connection; RSS hashing and NUMA buffer
	// placement key off it.
	ConnID int
	// SizeReq / SizeResp are wire sizes in bytes.
	SizeReq, SizeResp int

	// Created is when the load generator decided to issue the request
	// (the open-loop intended send instant).
	Created float64
	// ReqAtClientNIC is when the request packet left the client NIC —
	// the client-side tcpdump request timestamp.
	ReqAtClientNIC float64
	// ArriveServer is when the packet reached the server NIC.
	ArriveServer float64
	// ServiceStart is when a server worker began user-space processing.
	ServiceStart float64
	// ServerDone is when the server finished and handed the response to
	// its NIC.
	ServerDone float64
	// RespAtClientNIC is when the response packet reached the client NIC —
	// the client-side tcpdump response timestamp.
	RespAtClientNIC float64
	// ClientDone is when the load tester's user-space callback observed
	// the response (after kernel interrupt handling and any client-side
	// queueing/batching).
	ClientDone float64

	// Phases is the mechanistic decomposition of the measured latency:
	// every span of [Created, ClientDone] is attributed to exactly one
	// phase as the request moves through the simulated stack, so
	// Phases.Sum() == MeasuredLatency() for completed requests (enforced by
	// TestPhaseSumInvariant).
	Phases anatomy.Vec
}

// MeasuredLatency is what the load tester reports: user-space round trip
// from intended send to callback execution.
func (r *Request) MeasuredLatency() float64 { return r.ClientDone - r.Created }

// WireLatency is what tcpdump on the client reports: NIC out to NIC in.
func (r *Request) WireLatency() float64 { return r.RespAtClientNIC - r.ReqAtClientNIC }

// ServerLatency is time spent on the server (queueing + service).
func (r *Request) ServerLatency() float64 { return r.ServerDone - r.ArriveServer }

// NetworkLatency is round-trip time on the wire excluding the server.
func (r *Request) NetworkLatency() float64 { return r.WireLatency() - r.ServerLatency() }

// ClientLatency is the part of the measured latency spent on the client
// itself (send-side queueing before the NIC plus receive-side kernel and
// callback handling).
func (r *Request) ClientLatency() float64 { return r.MeasuredLatency() - r.WireLatency() }
