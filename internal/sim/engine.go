// Package sim is a discrete-event simulator of a small serving cluster:
// client machines, network links, and a multi-core server with an explicit
// NIC (RSS interrupt queues), CPU frequency model (DVFS governors and Turbo
// Boost with a thermal-headroom model), and NUMA memory placement.
//
// It is the substrate for the paper's experiments. The paper ran on
// Facebook production hardware whose NUMA/Turbo/DVFS/NIC knobs we cannot
// toggle (nor measure reproducibly) in this environment; the simulator
// implements the same causal mechanisms those knobs exercise, so the
// measurement pitfalls (Figs. 1-6) and the quantile-regression attribution
// (Table IV, Figs. 7-12) reproduce in shape. Everything is deterministic
// under a seed.
//
// Time is in seconds (float64). CPU work is in cycles; a core executing W
// cycles at frequency f takes W/f seconds.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a scheduled callback. seq breaks ties FIFO so same-time events
// run in schedule order, keeping runs deterministic.
type event struct {
	time   float64
	seq    uint64
	action func()
	index  int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event loop. The zero value is ready to use.
type Engine struct {
	heap eventHeap
	now  float64
	seq  uint64
	// Processed counts executed events, exposed for capacity planning in
	// benchmarks.
	processed uint64
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of executed events.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs action after delay seconds of simulated time. Negative
// delays panic: an event in the past is always a modeling bug.
func (e *Engine) Schedule(delay float64, action func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: scheduling %g seconds in the past", delay))
	}
	e.At(e.now+delay, action)
}

// At runs action at absolute simulated time t (>= Now).
func (e *Engine) At(t float64, action func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %g before now %g", t, e.now))
	}
	e.seq++
	heap.Push(&e.heap, &event{time: t, seq: e.seq, action: action})
}

// Run executes events until the queue drains or simulated time would
// exceed until. Events scheduled exactly at until still run.
func (e *Engine) Run(until float64) {
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.time > until {
			break
		}
		heap.Pop(&e.heap)
		e.now = next.time
		e.processed++
		next.action()
	}
	if e.now < until {
		e.now = until
	}
}

// Step executes the single next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	next := heap.Pop(&e.heap).(*event)
	e.now = next.time
	e.processed++
	next.action()
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }
