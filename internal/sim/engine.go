// Package sim is a discrete-event simulator of a small serving cluster:
// client machines, network links, and a multi-core server with an explicit
// NIC (RSS interrupt queues), CPU frequency model (DVFS governors and Turbo
// Boost with a thermal-headroom model), and NUMA memory placement.
//
// It is the substrate for the paper's experiments. The paper ran on
// Facebook production hardware whose NUMA/Turbo/DVFS/NIC knobs we cannot
// toggle (nor measure reproducibly) in this environment; the simulator
// implements the same causal mechanisms those knobs exercise, so the
// measurement pitfalls (Figs. 1-6) and the quantile-regression attribution
// (Table IV, Figs. 7-12) reproduce in shape. Everything is deterministic
// under a seed.
//
// Time is in seconds (float64). CPU work is in cycles; a core executing W
// cycles at frequency f takes W/f seconds.
package sim

import (
	"fmt"
	"math"
)

// event is a scheduled callback. seq breaks ties FIFO so same-time events
// run in schedule order, keeping runs deterministic. Events live in the
// engine's arena and are recycled through a free list, so the steady-state
// schedule/dispatch path performs no per-event heap allocation — the
// hottest loop in the repo (every simulated packet, CPU task, and governor
// tick passes through it).
type event struct {
	time   float64
	seq    uint64
	action func()
	// nextFree links arena slots on the free list (index+1; 0 terminates).
	// Only meaningful while the slot is not live.
	nextFree int32
}

// Engine is the discrete-event loop. The zero value is ready to use.
//
// Internally it is a 4-ary implicit heap of int32 arena indices over a
// recycled []event arena: a 4-ary heap halves tree depth versus the binary
// container/heap (fewer cache-missing comparisons per sift on the deep
// heaps a loaded cluster builds), moving int32 indices instead of 40-byte
// event structs keeps sift swaps cheap, and the free list means Schedule
// and dispatch allocate nothing once the arena has grown to the simulation's
// high-water event count.
type Engine struct {
	arena []event
	heap  []int32
	// free is the head of the arena free list, as index+1 (0 = empty), so
	// the zero value of Engine works without an init step.
	free int32
	now  float64
	seq  uint64
	// Processed counts executed events, exposed for capacity planning in
	// benchmarks.
	processed uint64
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of executed events.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs action after delay seconds of simulated time. Negative
// delays panic: an event in the past is always a modeling bug.
func (e *Engine) Schedule(delay float64, action func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: scheduling %g seconds in the past", delay))
	}
	e.At(e.now+delay, action)
}

// At runs action at absolute simulated time t (>= Now).
func (e *Engine) At(t float64, action func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %g before now %g", t, e.now))
	}
	e.seq++
	idx := e.alloc()
	ev := &e.arena[idx]
	ev.time = t
	ev.seq = e.seq
	ev.action = action
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
}

// alloc returns a free arena slot, recycling popped events before growing.
func (e *Engine) alloc() int32 {
	if e.free != 0 {
		idx := e.free - 1
		e.free = e.arena[idx].nextFree
		return idx
	}
	e.arena = append(e.arena, event{})
	return int32(len(e.arena) - 1)
}

// release returns an arena slot to the free list, dropping the action
// closure so it does not outlive its event.
func (e *Engine) release(idx int32) {
	e.arena[idx].action = nil
	e.arena[idx].nextFree = e.free
	e.free = idx + 1
}

// less orders arena slots by (time, seq): earliest first, FIFO on ties.
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.arena[a], &e.arena[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

// siftUp restores the 4-ary heap invariant after appending at position i.
func (e *Engine) siftUp(i int) {
	idx := e.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := e.heap[parent]
		if !e.less(idx, p) {
			break
		}
		e.heap[i] = p
		i = parent
	}
	e.heap[i] = idx
}

// siftDown restores the 4-ary heap invariant after replacing the root.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	idx := e.heap[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], idx) {
			break
		}
		e.heap[i] = e.heap[best]
		i = best
	}
	e.heap[i] = idx
}

// popMin removes and returns the earliest event's time and action, recycling
// its arena slot before the action runs (the action may schedule new events,
// which then reuse the slot).
func (e *Engine) popMin() (float64, func()) {
	root := e.heap[0]
	t, action := e.arena[root].time, e.arena[root].action
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
	e.release(root)
	return t, action
}

// Run executes events until the queue drains or simulated time would
// exceed until. Events scheduled exactly at until still run.
func (e *Engine) Run(until float64) {
	for len(e.heap) > 0 {
		if e.arena[e.heap[0]].time > until {
			break
		}
		t, action := e.popMin()
		e.now = t
		e.processed++
		action()
	}
	if e.now < until {
		e.now = until
	}
}

// Step executes the single next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	t, action := e.popMin()
	e.now = t
	e.processed++
	action()
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }
