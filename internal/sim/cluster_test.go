package sim

import (
	"math"
	"testing"

	"treadmill/internal/dist"
	"treadmill/internal/queue"
	"treadmill/internal/stats"
)

// mm1Cluster builds a degenerate cluster that is analytically an M/M/1
// queue: one fixed-frequency core, exponential service, free network, free
// clients.
func mm1Cluster(t *testing.T, lambda, mu float64) *Cluster {
	t.Helper()
	cfg := DefaultClusterConfig(1)
	cfg.Server.CPU = CPUConfig{
		Cores: 1, Sockets: 1, BaseHz: 1e9, MinHz: 1e9, TurboHz: 1e9, Steps: 1,
		Governor: Performance, GovernorTick: 1, UpThreshold: 0.5,
		Ambient: 40, TMax: 95, TTurbo: 65, ThermalC: 60, ThermalK: 2, CorePower: 8,
	}
	cfg.Server.IRQCycles = 0
	cfg.Server.RemotePenaltyCycles = 0
	cfg.Server.UserCycles = dist.Exponential{Rate: mu / 1e9} // cycles at 1GHz
	cfg.Clients[0].Config.SendCycles = 0
	cfg.Clients[0].Config.RecvCycles = 0
	cfg.Clients[0].Config.KernelDelay = 0
	cfg.LinkBandwidthBps = 1e15
	cfg.IntraRackDelay = 0
	cfg.CrossRackDelay = 0
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestOpenLoopMatchesMM1(t *testing.T) {
	const lambda, mu = 7000.0, 10000.0
	cl := mm1Cluster(t, lambda, mu)
	var lats []float64
	cl.Clients[0].OnComplete = func(r *Request) {
		if r.Created > 0.5 { // skip transient
			lats = append(lats, r.MeasuredLatency())
		}
	}
	if err := cl.Clients[0].StartOpenLoop(lambda, 4); err != nil {
		t.Fatal(err)
	}
	cl.Run(10)
	if len(lats) < 40000 {
		t.Fatalf("only %d samples", len(lats))
	}
	analytic, _ := queue.NewMM1(lambda, mu)
	gotMean := stats.Mean(lats)
	if rel := math.Abs(gotMean-analytic.MeanLatency()) / analytic.MeanLatency(); rel > 0.08 {
		t.Errorf("mean latency %g vs M/M/1 %g (rel %.3f)", gotMean, analytic.MeanLatency(), rel)
	}
	gotP99, _ := stats.Quantile(lats, 0.99)
	wantP99, _ := analytic.LatencyQuantile(0.99)
	// Tail estimates from a correlated queueing process converge slowly;
	// 15% brackets the Monte-Carlo error at this sample size.
	if rel := math.Abs(gotP99-wantP99) / wantP99; rel > 0.15 {
		t.Errorf("p99 %g vs M/M/1 %g (rel %.3f)", gotP99, wantP99, rel)
	}
}

func TestClosedLoopCapsOutstanding(t *testing.T) {
	const conns = 6
	cl := mm1Cluster(t, 8000, 10000)
	var samples []int
	cl.SampleOutstanding(100e-6, &samples)
	if err := cl.Clients[0].StartClosedLoop(conns, 0); err != nil {
		t.Fatal(err)
	}
	cl.Run(2)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	maxOut := 0
	for _, s := range samples {
		if s > maxOut {
			maxOut = s
		}
	}
	if maxOut > conns {
		t.Fatalf("closed loop reached %d outstanding with %d connections", maxOut, conns)
	}
}

func TestOpenLoopExceedsClosedLoopOutstanding(t *testing.T) {
	// The paper's Fig. 1: at 80% utilization the open-loop controller's
	// outstanding-request distribution has a far longer tail than a
	// closed-loop controller with a fixed connection pool.
	open := mm1Cluster(t, 8000, 10000)
	var openSamples []int
	open.SampleOutstanding(100e-6, &openSamples)
	if err := open.Clients[0].StartOpenLoop(8000, 8); err != nil {
		t.Fatal(err)
	}
	open.Run(3)

	closed := mm1Cluster(t, 8000, 10000)
	var closedSamples []int
	closed.SampleOutstanding(100e-6, &closedSamples)
	if err := closed.Clients[0].StartClosedLoop(8, 0); err != nil {
		t.Fatal(err)
	}
	closed.Run(3)

	p99 := func(xs []int) float64 {
		f := make([]float64, len(xs))
		for i, v := range xs {
			f[i] = float64(v)
		}
		q, _ := stats.Quantile(f, 0.99)
		return q
	}
	if p99(openSamples) <= p99(closedSamples) {
		t.Errorf("open-loop p99 outstanding %g should exceed closed-loop %g",
			p99(openSamples), p99(closedSamples))
	}
}

func TestClusterValidation(t *testing.T) {
	cfg := DefaultClusterConfig(0)
	if _, err := NewCluster(cfg); err == nil {
		t.Error("no clients should error")
	}
	cfg = DefaultClusterConfig(1)
	cfg.LinkBandwidthBps = 0
	if _, err := NewCluster(cfg); err == nil {
		t.Error("zero bandwidth should error")
	}
	cfg = DefaultClusterConfig(1)
	cfg.CrossRackDelay = cfg.IntraRackDelay / 2
	if _, err := NewCluster(cfg); err == nil {
		t.Error("cross < intra delay should error")
	}
	cfg = DefaultClusterConfig(1)
	cfg.Server.RSSQueues = 0
	if _, err := NewCluster(cfg); err == nil {
		t.Error("no RSS queues should error")
	}
	cfg = DefaultClusterConfig(1)
	cfg.Server.UserCycles = nil
	if _, err := NewCluster(cfg); err == nil {
		t.Error("nil service sampler should error")
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultClusterConfig(2)
		cfg.Seed = 42
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var lats []float64
		for _, c := range cl.Clients {
			c.OnComplete = func(r *Request) { lats = append(lats, r.MeasuredLatency()) }
			if err := c.StartOpenLoop(30000, 16); err != nil {
				t.Fatal(err)
			}
		}
		cl.Run(0.2)
		return lats
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRemoteRackClientSeesHigherLatency(t *testing.T) {
	cfg := DefaultClusterConfig(2)
	cfg.Clients[1].Rack = RemoteRack
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lats := make([][]float64, 2)
	for i, c := range cl.Clients {
		i, c := i, c
		c.OnComplete = func(r *Request) { lats[i] = append(lats[i], r.MeasuredLatency()) }
		if err := c.StartOpenLoop(40000, 16); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(0.5)
	m0, m1 := stats.Mean(lats[0]), stats.Mean(lats[1])
	// Remote rack adds 2×(cross−intra) ≈ 134µs of round trip.
	if m1-m0 < 100e-6 {
		t.Errorf("remote client mean %g not clearly above local %g", m1, m0)
	}
}

func TestSingleClientOverloadBiasesMeasurement(t *testing.T) {
	// Paper §II-C: a single client pushed hard develops client-side
	// queueing, so its measured latency diverges from the wire latency.
	cfg := DefaultClusterConfig(1)
	cfg.Clients[0].Config.Cores = 1 // starve the client CPU
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var clientBias []float64
	cl.Clients[0].OnComplete = func(r *Request) {
		clientBias = append(clientBias, r.ClientLatency())
	}
	// 1 core at 2.4GHz with 6.8k cycles/req saturates near 350k RPS; drive
	// at 330k.
	if err := cl.Clients[0].StartOpenLoop(330000, 64); err != nil {
		t.Fatal(err)
	}
	cl.Run(0.4)
	if cl.Clients[0].Utilization() < 0.7 {
		t.Fatalf("client utilization %g too low for the scenario", cl.Clients[0].Utilization())
	}
	p99, _ := stats.Quantile(clientBias, 0.99)
	if p99 < 50e-6 {
		t.Errorf("client-side bias p99 = %g, expected large under overload", p99)
	}

	// Same aggregate load spread over 8 clients: bias shrinks to ~the
	// constant kernel delay.
	cfg8 := DefaultClusterConfig(8)
	cl8, err := NewCluster(cfg8)
	if err != nil {
		t.Fatal(err)
	}
	var bias8 []float64
	for _, c := range cl8.Clients {
		c.OnComplete = func(r *Request) { bias8 = append(bias8, r.ClientLatency()) }
		if err := c.StartOpenLoop(330000.0/8, 16); err != nil {
			t.Fatal(err)
		}
	}
	cl8.Run(0.4)
	p99m, _ := stats.Quantile(bias8, 0.99)
	if p99m >= p99/2 {
		t.Errorf("multi-client bias p99 %g not clearly below single-client %g", p99m, p99)
	}
}

func TestBatchedCallbackInflatesMeasurement(t *testing.T) {
	base := func(style CallbackStyle) (measured, wire float64) {
		cfg := DefaultClusterConfig(1)
		cfg.Clients[0].Config.Callback = style
		cfg.Clients[0].Config.PollPeriod = 50e-6
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var m, w []float64
		cl.Clients[0].OnComplete = func(r *Request) {
			m = append(m, r.MeasuredLatency())
			w = append(w, r.WireLatency())
		}
		if err := cl.Clients[0].StartOpenLoop(50000, 16); err != nil {
			t.Fatal(err)
		}
		cl.Run(0.5)
		return stats.Mean(m), stats.Mean(w)
	}
	mi, wi := base(InlineCallback)
	mb, wb := base(BatchedCallback)
	gapInline, gapBatched := mi-wi, mb-wb
	// Batched polling adds ~half a poll period on average.
	if gapBatched-gapInline < 15e-6 {
		t.Errorf("batched gap %g not clearly above inline gap %g", gapBatched, gapInline)
	}
	_ = wb
}

func TestOndemandLowLoadLatencyPenalty(t *testing.T) {
	// Paper Finding 3: ondemand hurts median latency at LOW load because
	// requests hit downclocked cores and pay transition stalls.
	run := func(gov Governor) float64 {
		cfg := DefaultClusterConfig(4)
		cfg.Server.CPU.Governor = gov
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var lats []float64
		for _, c := range cl.Clients {
			c.OnComplete = func(r *Request) {
				if r.Created > 0.1 {
					lats = append(lats, r.MeasuredLatency())
				}
			}
			if err := c.StartOpenLoop(150000.0/4, 16); err != nil {
				t.Fatal(err)
			}
		}
		cl.Run(0.6)
		med, _ := stats.Quantile(lats, 0.5)
		return med
	}
	od, perf := run(Ondemand), run(Performance)
	if od <= perf {
		t.Errorf("ondemand median %g should exceed performance median %g at low load", od, perf)
	}
}

func TestTurboReducesLatency(t *testing.T) {
	run := func(turbo bool) float64 {
		cfg := DefaultClusterConfig(4)
		cfg.Server.CPU.Governor = Performance
		cfg.Server.CPU.TurboEnabled = turbo
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var lats []float64
		for _, c := range cl.Clients {
			c.OnComplete = func(r *Request) {
				if r.Created > 0.1 {
					lats = append(lats, r.MeasuredLatency())
				}
			}
			if err := c.StartOpenLoop(150000.0/4, 16); err != nil {
				t.Fatal(err)
			}
		}
		cl.Run(0.5)
		return stats.Mean(lats)
	}
	on, off := run(true), run(false)
	if on >= off {
		t.Errorf("turbo-on mean %g should beat turbo-off %g at low load", on, off)
	}
}

func TestNUMAInterleaveWorseAtHighLoad(t *testing.T) {
	run := func(policy NUMAPolicy) float64 {
		cfg := DefaultClusterConfig(8)
		cfg.Server.NUMA = policy
		cfg.Server.CPU.Governor = Performance
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var lats []float64
		for _, c := range cl.Clients {
			c.OnComplete = func(r *Request) {
				if r.Created > 0.1 {
					lats = append(lats, r.MeasuredLatency())
				}
			}
			if err := c.StartOpenLoop(700000.0/8, 16); err != nil {
				t.Fatal(err)
			}
		}
		cl.Run(0.4)
		p99, _ := stats.Quantile(lats, 0.99)
		return p99
	}
	same, inter := run(NUMASameNode), run(NUMAInterleave)
	if inter <= same {
		t.Errorf("interleave p99 %g should exceed same-node %g at high load", inter, same)
	}
}

func TestMcrouterForwarding(t *testing.T) {
	cfg := DefaultClusterConfig(2)
	cfg.Server = McrouterServerConfig()
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lats []float64
	for _, c := range cl.Clients {
		c.OnComplete = func(r *Request) { lats = append(lats, r.ServerLatency()) }
		if err := c.StartOpenLoop(40000, 16); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(0.3)
	if len(lats) == 0 {
		t.Fatal("no requests completed")
	}
	// Every request must include at least the ~45µs backend round trip.
	mn := stats.Min(lats)
	if mn < 25e-6 {
		t.Errorf("min server latency %g too small to include backend hop", mn)
	}
}

func TestServerUtilizationTargets(t *testing.T) {
	// The calibrated service demand should put ~100k RPS near 10% and the
	// CPU utilization should scale roughly linearly.
	cfg := DefaultClusterConfig(4)
	cfg.Server.CPU.Governor = Performance
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.Clients {
		if err := c.StartOpenLoop(100000.0/4, 16); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(0.5)
	u := cl.Server.CPU().Utilization()
	if u < 0.06 || u > 0.16 {
		t.Errorf("utilization at 100k RPS = %g, want ~0.10", u)
	}
}

func TestClientConfigValidation(t *testing.T) {
	bad := []func(*ClientConfig){
		func(c *ClientConfig) { c.Cores = 0 },
		func(c *ClientConfig) { c.SendCycles = -1 },
		func(c *ClientConfig) { c.Callback = BatchedCallback; c.PollPeriod = 0 },
		func(c *ClientConfig) { c.ReqBytes = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultClusterConfig(1)
		mut(&cfg.Clients[0].Config)
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("bad client config %d accepted", i)
		}
	}
}

func TestClientStartValidation(t *testing.T) {
	cl, err := NewCluster(DefaultClusterConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	c := cl.Clients[0]
	if err := c.StartOpenLoop(0, 1); err == nil {
		t.Error("zero rate should error")
	}
	if err := c.StartOpenLoop(100, 0); err == nil {
		t.Error("zero conns should error")
	}
	if err := c.StartClosedLoop(0, 0); err == nil {
		t.Error("zero conns should error")
	}
	if err := c.StartClosedLoop(1, -1); err == nil {
		t.Error("negative think time should error")
	}
}

func TestStopHaltsGeneration(t *testing.T) {
	cl, err := NewCluster(DefaultClusterConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Clients[0].StartOpenLoop(50000, 8); err != nil {
		t.Fatal(err)
	}
	cl.Run(0.1)
	sentAtStop := cl.Clients[0].Sent()
	cl.StopAll()
	cl.Run(0.3)
	// A few in-flight arrivals may land, but generation must cease.
	if cl.Clients[0].Sent() > sentAtStop+2 {
		t.Errorf("sent grew from %d to %d after Stop", sentAtStop, cl.Clients[0].Sent())
	}
	if cl.Clients[0].Outstanding() != 0 {
		t.Errorf("outstanding = %d after drain", cl.Clients[0].Outstanding())
	}
}

func TestFrequencyTransitionsCounted(t *testing.T) {
	// A load that puts per-core utilization near the governor threshold
	// makes ondemand oscillate between P-states.
	cfg := DefaultClusterConfig(4)
	cfg.Server.CPU.Governor = Ondemand
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.Clients {
		if err := c.StartOpenLoop(350000.0/4, 8); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(0.3)
	if cl.Server.CPU().Transitions() == 0 {
		t.Error("ondemand near the threshold should log frequency transitions")
	}

	cfgP := DefaultClusterConfig(2)
	cfgP.Server.CPU.Governor = Performance
	cfgP.Server.CPU.TurboEnabled = false
	clP, err := NewCluster(cfgP)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clP.Clients {
		if err := c.StartOpenLoop(75000, 8); err != nil {
			t.Fatal(err)
		}
	}
	clP.Run(0.3)
	if clP.Server.CPU().Transitions() != 0 {
		t.Errorf("performance governor made %d transitions, want 0", clP.Server.CPU().Transitions())
	}
}

func TestThermalModelHeatsUnderLoad(t *testing.T) {
	cfg := DefaultClusterConfig(8)
	cfg.Server.CPU.Governor = Performance
	cfg.Server.CPU.TurboEnabled = true
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.Clients {
		if err := c.StartOpenLoop(700000.0/8, 16); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(0.5)
	if temp := cl.Server.CPU().SocketTemp(0); temp <= cfg.Server.CPU.Ambient+1 {
		t.Errorf("socket temperature %g did not rise above ambient under high load", temp)
	}
}
