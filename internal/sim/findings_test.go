package sim

import (
	"math"
	"testing"

	"treadmill/internal/stats"
)

// This file asserts that the simulator reproduces the paper's numbered
// findings (§V-B/V-C) mechanistically, not just statistically.

// runConfig drives a cluster and returns measured latencies plus the
// cluster for probing.
func runConfig(t *testing.T, mutate func(*ClusterConfig), totalRate float64, dur float64) ([]float64, *Cluster) {
	t.Helper()
	cfg := DefaultClusterConfig(8)
	mutate(&cfg)
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lats []float64
	for _, c := range cl.Clients {
		c.OnComplete = func(r *Request) {
			if r.Created > 0.05 {
				lats = append(lats, r.MeasuredLatency())
			}
		}
		if err := c.StartOpenLoop(totalRate/8, 8); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(0.05 + dur)
	if len(lats) < 1000 {
		t.Fatalf("only %d samples", len(lats))
	}
	return lats, cl
}

// Finding 1: latency variance grows with utilization (M/M/1-like
// amplification of outstanding-request variance).
func TestFinding1VarianceGrowsWithLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	perf := func(c *ClusterConfig) { c.Server.CPU.Governor = Performance }
	low, _ := runConfig(t, perf, 150000, 0.15)
	high, _ := runConfig(t, perf, 750000, 0.15)
	lowVar := stats.Variance(low)
	highVar := stats.Variance(high)
	if highVar < 4*lowVar {
		t.Errorf("variance low=%g high=%g; expected strong growth with load", lowVar, highVar)
	}
}

// Finding 3: with the ondemand governor, median latency is HIGHER at low
// load than at high load, because low-load requests run on downclocked
// cores and pay frequency-transition overheads.
func TestFinding3OndemandWorseAtLowLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	od := func(c *ClusterConfig) { c.Server.CPU.Governor = Ondemand }
	low, _ := runConfig(t, od, 150000, 0.15)
	high, _ := runConfig(t, od, 700000, 0.15)
	p50low, _ := stats.Quantile(low, 0.5)
	p50high, _ := stats.Quantile(high, 0.5)
	if p50low <= p50high {
		t.Errorf("ondemand p50: low-load %g <= high-load %g; paper Finding 3 inverted", p50low, p50high)
	}
}

// Finding 4 (structure): NIC affinity interacts with the DVFS governor at
// low load — flipping the interrupt mapping changes latency under
// ondemand, where interrupt placement decides which cores sleep and
// downclock, but has almost no effect under performance, where every core
// is pinned fast and awake. The paper reports the same interaction
// (same-node vs all-nodes only matters when dvfs is ondemand); the *sign*
// of the low-load effect depends on the machine's idle-state vs
// governor-transition balance, which EXPERIMENTS.md discusses.
func TestFinding4NICByDVFSInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	run := func(gov Governor, aff NICAffinity) (float64, *Cluster) {
		lats, cl := runConfig(t, func(c *ClusterConfig) {
			c.Server.CPU.Governor = gov
			c.Server.NICAffinity = aff
		}, 150000, 0.2)
		p50, _ := stats.Quantile(lats, 0.5)
		return p50, cl
	}
	odSame, clSame := run(Ondemand, NICSameNode)
	odAll, clAll := run(Ondemand, NICAllNodes)
	perfSame, _ := run(Performance, NICSameNode)
	perfAll, _ := run(Performance, NICAllNodes)

	// Interrupt placement must actually shift idle behaviour under
	// ondemand.
	if clSame.Server.CPU().WakeEvents() == 0 || clAll.Server.CPU().WakeEvents() == 0 {
		t.Fatal("no deep-idle exits at low load; model miscalibrated")
	}
	odEffect := math.Abs(odAll - odSame)
	perfEffect := math.Abs(perfAll - perfSame)
	if odEffect < 2*perfEffect {
		t.Errorf("nic effect under ondemand (%g) not clearly larger than under performance (%g); dvfs:nic interaction missing",
			odEffect, perfEffect)
	}
	if odEffect < 1e-6 {
		t.Errorf("nic affinity had no effect at low load under ondemand (%g)", odEffect)
	}
}

// Finding 6: interleaved NUMA policy hurts most under high load, where
// queueing magnifies the extra memory latency; at low load the penalty is
// small.
func TestFinding6NUMAPenaltyMagnifiedByLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	run := func(policy NUMAPolicy, rate float64) float64 {
		lats, _ := runConfig(t, func(c *ClusterConfig) {
			c.Server.CPU.Governor = Performance
			c.Server.NUMA = policy
		}, rate, 0.15)
		p99, _ := stats.Quantile(lats, 0.99)
		return p99
	}
	lowDelta := run(NUMAInterleave, 150000) - run(NUMASameNode, 150000)
	highDelta := run(NUMAInterleave, 750000) - run(NUMASameNode, 750000)
	if highDelta < 2*lowDelta {
		t.Errorf("NUMA p99 penalty: low-load %g, high-load %g; queueing should magnify it", lowDelta, highDelta)
	}
	if highDelta <= 0 {
		t.Errorf("interleave should hurt at high load, delta = %g", highDelta)
	}
}

// Finding 8: Turbo helps the CPU-bound mcrouter workload substantially at
// low load, and the benefit shrinks at high load where thermal headroom is
// consumed.
func TestFinding8TurboBenefitShrinksAtHighLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	run := func(turbo bool, rate float64) float64 {
		lats, _ := runConfig(t, func(c *ClusterConfig) {
			c.Server = McrouterServerConfig()
			c.Server.CPU.Governor = Performance
			c.Server.CPU.TurboEnabled = turbo
		}, rate, 0.25)
		return stats.Mean(lats)
	}
	// mcrouter's higher CPU demand means ~130k RPS is low load and ~600k
	// is the 70% point.
	const lowR, highR = 130000.0, 600000.0
	lowBase, lowTurbo := run(false, lowR), run(true, lowR)
	highBase, highTurbo := run(false, highR), run(true, highR)
	lowGain := lowBase - lowTurbo
	highGain := highBase - highTurbo
	if lowGain <= 0 {
		t.Fatalf("turbo should help mcrouter at low load, gain = %g", lowGain)
	}
	// Relative benefit (fraction of no-turbo latency) should shrink at
	// high load, where thermal headroom is consumed.
	if highGain/highBase >= lowGain/lowBase {
		t.Errorf("relative turbo gain grew with load: low %.3f high %.3f",
			lowGain/lowBase, highGain/highBase)
	}
}
