package sim

import (
	"testing"
)

// TestEngineScheduleZeroAlloc proves the schedule/dispatch hot path does not
// allocate per event once the arena has grown: a recurring event chain that
// keeps a steady pending count must run at 0 allocs per event.
func TestEngineScheduleZeroAlloc(t *testing.T) {
	eng := &Engine{}
	var tick func()
	tick = func() { eng.Schedule(1e-6, tick) }
	// Warm the arena and heap to their high-water size.
	for i := 0; i < 64; i++ {
		eng.Schedule(1e-6, tick)
	}
	eng.Run(1e-3)

	const events = 1000
	allocs := testing.AllocsPerRun(10, func() {
		horizon := eng.Now() + events*1e-6/64
		eng.Run(horizon)
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule/dispatch allocated %.1f times per Run, want 0", allocs)
	}
}

// TestEngineArenaReuse verifies the free list recycles arena slots: popping
// and re-scheduling one event at a time must not grow the arena.
func TestEngineArenaReuse(t *testing.T) {
	eng := &Engine{}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10000 {
			eng.Schedule(1e-6, tick)
		}
	}
	eng.Schedule(1e-6, tick)
	eng.Run(1)
	if n != 10000 {
		t.Fatalf("ran %d events", n)
	}
	if got := len(eng.arena); got > 2 {
		t.Errorf("arena grew to %d slots for a 1-deep event chain; free list not recycling", got)
	}
}

// TestEngineHeapStressOrdering cross-checks the 4-ary index heap against a
// reference sort under a deterministic pseudo-random schedule, including
// same-time FIFO ties.
func TestEngineHeapStressOrdering(t *testing.T) {
	eng := &Engine{}
	const n = 5000
	var got []float64
	x := uint64(12345)
	for i := 0; i < n; i++ {
		// xorshift: cheap deterministic times over a small grid to force ties.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		tm := float64(x%97) * 1e-4
		eng.At(tm, func() { got = append(got, eng.Now()) })
	}
	eng.Run(1)
	if len(got) != n {
		t.Fatalf("ran %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i] < got[i-1] {
			t.Fatalf("event %d ran at %g after %g", i, got[i], got[i-1])
		}
	}
	if eng.Pending() != 0 {
		t.Errorf("pending = %d after drain", eng.Pending())
	}
}
