package sim

import (
	"testing"
)

// BenchmarkEngineEvents measures raw event throughput of the simulator
// core (events/op is 1; ns/op is the per-event cost).
func BenchmarkEngineEvents(b *testing.B) {
	eng := &Engine{}
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(1e-6, tick)
		}
	}
	eng.Schedule(1e-6, tick)
	b.ResetTimer()
	eng.Run(1e18)
}

// BenchmarkEngineSchedule measures the steady-state schedule/dispatch path
// with a realistic pending-event depth (64 concurrent timer chains, the
// shape a loaded cluster produces). The allocs/op report is the
// zero-allocation guarantee: after arena warm-up, scheduling and popping an
// event must not touch the garbage collector.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := &Engine{}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(1e-6, tick)
		}
	}
	// 64 interleaved chains keep the heap ~64 deep throughout.
	for i := 0; i < 64; i++ {
		eng.Schedule(float64(i)*1e-8, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(1e18)
}

// BenchmarkClusterRequests measures end-to-end simulated requests per
// second of wall time at the paper's high-load operating point.
func BenchmarkClusterRequests(b *testing.B) {
	cfg := DefaultClusterConfig(8)
	cfg.Server.CPU.Governor = Performance
	cluster, err := NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	done := 0
	for _, c := range cluster.Clients {
		c.OnComplete = func(*Request) { done++ }
		if err := c.StartOpenLoop(700000.0/8, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	// Run until b.N requests complete (in chunks of simulated time).
	horizon := 0.0
	for done < b.N {
		horizon += 0.01
		cluster.Run(horizon)
	}
	b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "sim_req/s")
}

func BenchmarkCoreSubmit(b *testing.B) {
	eng := &Engine{}
	cpu, err := NewCPU(eng, DefaultCPUConfig())
	if err != nil {
		b.Fatal(err)
	}
	core := cpu.Cores[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Submit(1000, nil)
		if i%1024 == 0 {
			eng.Run(eng.Now() + 1)
		}
	}
	eng.Run(eng.Now() + 10)
}
