package sim

import (
	"fmt"
	"math"

	"treadmill/internal/anatomy"
	"treadmill/internal/dist"
)

// pool is a fixed-frequency multi-core FIFO resource used to model client
// machines (DVFS is a server-side factor; clients stay simple).
type pool struct {
	eng    *Engine
	freq   float64
	free   int
	queue  []task
	busySz int // total servers
	busyT  float64
}

func newPool(eng *Engine, servers int, freq float64) *pool {
	return &pool{eng: eng, freq: freq, free: servers, busySz: servers}
}

func (p *pool) submit(cycles float64, done func()) {
	p.queue = append(p.queue, task{cycles: cycles, done: done})
	p.dispatch()
}

func (p *pool) dispatch() {
	for p.free > 0 && len(p.queue) > 0 {
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.free--
		dur := t.cycles / p.freq
		p.busyT += dur
		p.eng.Schedule(dur, func() {
			p.free++
			if t.done != nil {
				t.done()
			}
			p.dispatch()
		})
	}
}

func (p *pool) utilization() float64 {
	if p.eng.Now() == 0 {
		return 0
	}
	u := p.busyT / (float64(p.busySz) * p.eng.Now())
	if u > 1 {
		u = 1
	}
	return u
}

// CallbackStyle models how a load tester's client executes response
// callbacks — the design axis behind the paper's client-side bias findings.
type CallbackStyle int

const (
	// InlineCallback executes the response callback immediately when the
	// response is processed, as Treadmill does via wangle (§III-A).
	InlineCallback CallbackStyle = iota
	// BatchedCallback defers completions to a periodic event-loop poll, as
	// simpler load testers do. It adds uniform latency noise of up to one
	// poll period and distorts the measured distribution's shape.
	BatchedCallback
)

// ClientConfig describes one load-generating machine.
type ClientConfig struct {
	// Cores and FreqHz size the client CPU pool.
	Cores  int
	FreqHz float64
	// SendCycles is client work to build+send one request.
	SendCycles float64
	// RecvCycles is client work to process one response and run its
	// callback.
	RecvCycles float64
	// KernelDelay is the fixed in-kernel interrupt-handling time per
	// response before user code sees it — the paper's constant ~30µs gap
	// between tcpdump and Treadmill curves (§III-C1).
	KernelDelay float64
	// Callback selects inline vs batched completion.
	Callback CallbackStyle
	// PollPeriod is the event-loop period for BatchedCallback.
	PollPeriod float64
	// ReqBytes / RespBytes are wire sizes.
	ReqBytes, RespBytes int
	// Arrival, when non-nil, builds the inter-arrival gap process for the
	// requested open-loop rate instead of the default Poisson stream —
	// bursty MMPP or flash-crowd arrivals at matched long-run load. Called
	// once per StartOpenLoop, so stateful samplers are per-client.
	Arrival func(rate float64) dist.Sampler
	// ConnSkew is the Zipf exponent of per-connection load (0 = uniform).
	// Real multiplexed connections never carry identical traffic; this
	// mild inequality is what makes connection-to-core placement matter
	// across restarts (performance hysteresis). Keep it small: a skew
	// that lets one core exceed its service capacity turns hysteresis
	// into divergence.
	ConnSkew float64
}

// DefaultClientConfig returns a well-provisioned Treadmill-style client.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Cores:       4,
		FreqHz:      2.4e9,
		SendCycles:  2600,
		RecvCycles:  4200,
		KernelDelay: 30e-6,
		Callback:    InlineCallback,
		PollPeriod:  50e-6,
		ReqBytes:    120,
		RespBytes:   1100,
		ConnSkew:    0.15,
	}
}

func (c ClientConfig) validate() error {
	if c.Cores < 1 || c.FreqHz <= 0 {
		return fmt.Errorf("sim: client needs cores >= 1 and positive freq")
	}
	if c.SendCycles < 0 || c.RecvCycles < 0 || c.KernelDelay < 0 {
		return fmt.Errorf("sim: client costs must be >= 0")
	}
	if c.Callback == BatchedCallback && c.PollPeriod <= 0 {
		return fmt.Errorf("sim: batched callbacks need a positive poll period")
	}
	if c.ReqBytes <= 0 || c.RespBytes <= 0 {
		return fmt.Errorf("sim: packet sizes must be positive")
	}
	if c.ConnSkew < 0 {
		return fmt.Errorf("sim: ConnSkew %g must be >= 0", c.ConnSkew)
	}
	return nil
}

// Client is one simulated load-generating machine connected to a server
// through a pair of links.
type Client struct {
	ID  int
	cfg ClientConfig

	eng    *Engine
	rng    *dist.RNG
	cpu    *pool
	toSrv  *Link
	fromSr *Link
	server *Server

	// OnComplete receives every finished request. The experiment layer
	// decides what to record; the Request is not retained by the client.
	OnComplete func(*Request)

	nextID      uint64
	outstanding int
	sent        uint64
	done        uint64

	stopped bool
}

// NewClient wires a client to a server via the given directional links.
func NewClient(id int, eng *Engine, cfg ClientConfig, rng *dist.RNG, server *Server, toServer, fromServer *Link) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Client{
		ID:     id,
		cfg:    cfg,
		eng:    eng,
		rng:    rng,
		cpu:    newPool(eng, cfg.Cores, cfg.FreqHz),
		toSrv:  toServer,
		fromSr: fromServer,
		server: server,
	}, nil
}

// Outstanding returns the number of this client's in-flight requests.
func (c *Client) Outstanding() int { return c.outstanding }

// Sent and Done report request counters.
func (c *Client) Sent() uint64 { return c.sent }

// Done returns the number of completed requests.
func (c *Client) Done() uint64 { return c.done }

// Utilization returns the client CPU utilization — the quantity that must
// stay low to avoid client-side queueing bias (paper §II-C).
func (c *Client) Utilization() float64 { return c.cpu.utilization() }

// Stop halts load generation after in-flight work drains.
func (c *Client) Stop() { c.stopped = true }

// Stopped reports whether Stop has been called (telemetry probes use it to
// decide when to stop self-rescheduling).
func (c *Client) Stopped() bool { return c.stopped }

// StartOpenLoop generates requests with exponential inter-arrival times at
// the given rate across conns connections, the paper's required open-loop
// design (§II-A). Generation continues until Stop or the engine horizon.
func (c *Client) StartOpenLoop(rate float64, conns int) error {
	if rate <= 0 || math.IsNaN(rate) {
		return fmt.Errorf("sim: open-loop rate %g must be positive", rate)
	}
	if conns < 1 {
		return fmt.Errorf("sim: need >= 1 connection")
	}
	base := c.ID * 1000
	for k := 0; k < conns; k++ {
		c.server.Connect(base + k)
	}
	// Per-connection load is unequal per ConnSkew, over a
	// per-client-shuffled connection order (paper §II-D hysteresis).
	zipf, err := dist.NewZipf(conns, c.cfg.ConnSkew)
	if err != nil {
		return err
	}
	order := c.rng.Perm(conns)
	var inter dist.Sampler = dist.Exponential{Rate: rate}
	if c.cfg.Arrival != nil {
		if inter = c.cfg.Arrival(rate); inter == nil {
			return fmt.Errorf("sim: Arrival factory returned nil sampler")
		}
	}
	var arrive func()
	arrive = func() {
		if c.stopped {
			return
		}
		conn := base + order[zipf.Rank(c.rng)]
		c.issue(conn, nil)
		c.eng.Schedule(inter.Sample(c.rng), arrive)
	}
	c.eng.Schedule(inter.Sample(c.rng), arrive)
	return nil
}

// StartClosedLoop runs conns concurrent connections that each wait for the
// previous response (plus thinkTime) before sending again — the flawed
// worker-thread pattern of prior load testers (§II-A).
func (c *Client) StartClosedLoop(conns int, thinkTime float64) error {
	if conns < 1 {
		return fmt.Errorf("sim: need >= 1 connection")
	}
	if thinkTime < 0 {
		return fmt.Errorf("sim: negative think time")
	}
	base := c.ID * 1000
	for k := 0; k < conns; k++ {
		conn := base + k
		c.server.Connect(conn)
		var next func(*Request)
		next = func(*Request) {
			if c.stopped {
				return
			}
			if thinkTime > 0 {
				c.eng.Schedule(thinkTime, func() { c.issue(conn, next) })
			} else {
				c.issue(conn, next)
			}
		}
		c.issue(conn, next)
	}
	return nil
}

// issue creates and sends one request; then, if set, runs after completion.
func (c *Client) issue(connID int, after func(*Request)) {
	req := &Request{
		ID:       c.nextID,
		ConnID:   connID,
		SizeReq:  c.cfg.ReqBytes,
		SizeResp: c.cfg.RespBytes,
		Created:  c.eng.Now(),
	}
	c.nextID++
	c.sent++
	c.outstanding++
	// Send path: client CPU work, then the wire. Each hop charges its span
	// to the request's phase vector (client pool queue+work, NIC
	// serialization queues, wire transit) so the spans tile
	// [Created, ClientDone] exactly.
	c.cpu.submit(c.cfg.SendCycles, func() {
		req.ReqAtClientNIC = c.eng.Now()
		req.Phases.Add(anatomy.ClientSend, req.ReqAtClientNIC-req.Created)
		c.toSrv.SendTimed(req.SizeReq, func(queueWait, transit float64) {
			req.Phases.Add(anatomy.NetQueue, queueWait)
			req.Phases.Add(anatomy.Wire, transit)
			c.server.Arrive(req, func() {
				c.fromSr.SendTimed(req.SizeResp, func(queueWait, transit float64) {
					req.Phases.Add(anatomy.NetQueue, queueWait)
					req.Phases.Add(anatomy.Wire, transit)
					c.receive(req, after)
				})
			})
		})
	})
}

// receive models the response path on the client: kernel interrupt
// handling, then user-space processing, then the callback (inline or at the
// next poll boundary).
func (c *Client) receive(req *Request, after func(*Request)) {
	req.RespAtClientNIC = c.eng.Now()
	c.eng.Schedule(c.cfg.KernelDelay, func() {
		c.cpu.submit(c.cfg.RecvCycles, func() {
			complete := func() {
				req.ClientDone = c.eng.Now()
				req.Phases.Add(anatomy.ClientRecv, req.ClientDone-req.RespAtClientNIC)
				c.outstanding--
				c.done++
				if c.OnComplete != nil {
					c.OnComplete(req)
				}
				if after != nil {
					after(req)
				}
			}
			if c.cfg.Callback == BatchedCallback {
				now := c.eng.Now()
				boundary := math.Ceil(now/c.cfg.PollPeriod) * c.cfg.PollPeriod
				c.eng.At(boundary, complete)
			} else {
				complete()
			}
		})
	})
}
