package sim

import (
	"fmt"
	"math"
)

// Link is a unidirectional network path with a FIFO serialization queue
// (bandwidth) and a fixed propagation delay. Client→server and
// server→client directions are separate Links, and the client-side
// "network latency grows with utilization" effect in the paper's Fig. 3
// falls out of the serialization queue.
type Link struct {
	eng *Engine
	// BandwidthBps is the line rate in bits per second.
	BandwidthBps float64
	// PropDelay is the one-way propagation + switching delay in seconds.
	// Cross-rack paths get a larger value (paper Fig. 2).
	PropDelay float64

	// freeAt is when the transmitter finishes the current backlog.
	freeAt  float64
	busySum float64
	sent    uint64
}

// NewLink validates and returns a Link.
func NewLink(eng *Engine, bandwidthBps, propDelay float64) (*Link, error) {
	if bandwidthBps <= 0 || math.IsNaN(bandwidthBps) {
		return nil, fmt.Errorf("sim: bandwidth %g must be positive", bandwidthBps)
	}
	if propDelay < 0 || math.IsNaN(propDelay) {
		return nil, fmt.Errorf("sim: propagation delay %g must be >= 0", propDelay)
	}
	return &Link{eng: eng, BandwidthBps: bandwidthBps, PropDelay: propDelay}, nil
}

// Send transmits a packet of the given size; deliver (which may be nil for
// fire-and-forget traffic) runs when it arrives at the far end. Queueing
// behind earlier packets is modeled by the transmitter's freeAt horizon.
func (l *Link) Send(sizeBytes int, deliver func()) {
	l.SendTimed(sizeBytes, func(_, _ float64) {
		if deliver != nil {
			deliver()
		}
	})
}

// SendTimed transmits like Send but reports the packet's decomposed network
// time to deliver: queueWait is time spent behind earlier packets in the
// transmitter's serialization queue, transit is serialization plus
// propagation. queueWait + transit spans send-call to delivery exactly.
func (l *Link) SendTimed(sizeBytes int, deliver func(queueWait, transit float64)) {
	if sizeBytes <= 0 {
		panic(fmt.Sprintf("sim: packet size %d must be positive", sizeBytes))
	}
	now := l.eng.Now()
	start := math.Max(now, l.freeAt)
	queueWait := start - now
	txTime := float64(sizeBytes*8) / l.BandwidthBps
	l.freeAt = start + txTime
	l.busySum += txTime
	l.sent++
	transit := txTime + l.PropDelay
	if deliver == nil {
		l.eng.At(l.freeAt+l.PropDelay, func() {})
		return
	}
	l.eng.At(l.freeAt+l.PropDelay, func() { deliver(queueWait, transit) })
}

// Utilization returns the fraction of time the transmitter was busy.
func (l *Link) Utilization() float64 {
	if l.eng.Now() == 0 {
		return 0
	}
	u := l.busySum / l.eng.Now()
	if u > 1 {
		u = 1
	}
	return u
}

// Sent returns the number of packets transmitted.
func (l *Link) Sent() uint64 { return l.sent }

// QueueDelay returns the current backlog delay a new packet would see.
func (l *Link) QueueDelay() float64 {
	d := l.freeAt - l.eng.Now()
	if d < 0 {
		return 0
	}
	return d
}
