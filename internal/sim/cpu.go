package sim

import (
	"fmt"
	"math"
)

// Governor selects the DVFS policy for server cores (paper Table III:
// "dvfs" factor).
type Governor int

const (
	// Ondemand scales a core's frequency with its recent utilization, as
	// the Linux ondemand governor does. Requests that arrive on a
	// downclocked core execute slowly until the next governor tick and pay
	// frequency-transition stalls — the mechanism behind the paper's
	// Finding 3 (higher median latency at LOW load under ondemand).
	Ondemand Governor = iota
	// Performance pins every core at the maximum non-turbo frequency.
	Performance
)

// String returns the governor name as used in the paper.
func (g Governor) String() string {
	switch g {
	case Ondemand:
		return "ondemand"
	case Performance:
		return "performance"
	default:
		return fmt.Sprintf("Governor(%d)", int(g))
	}
}

// CPUConfig describes the server processor package(s).
type CPUConfig struct {
	Cores          int     // total cores, split evenly across Sockets
	Sockets        int     // NUMA nodes
	BaseHz         float64 // maximum non-turbo frequency
	MinHz          float64 // lowest ondemand step
	TurboHz        float64 // single-core max turbo frequency
	Steps          int     // number of P-states between MinHz and BaseHz
	Governor       Governor
	TurboEnabled   bool
	GovernorTick   float64 // governor sampling period (s)
	TransitionCost float64 // stall per frequency change (s)
	UpThreshold    float64 // ondemand: util above this jumps to BaseHz

	// Idle-state model. Under the ondemand policy the OS races to idle:
	// a core idle for longer than IdleSleepThreshold enters a deep
	// C-state, and the next task pays IdleWakeLatency to exit it. This is
	// the dominant low-load latency penalty of power-saving policies and
	// the mechanism behind the paper's Finding 3 (ondemand hurts the
	// median at LOW load) and Finding 4 (spreading NIC interrupts keeps
	// cores awake). The performance policy is modeled as production
	// deployments configure it: idle states capped (no wake penalty).
	IdleSleepThreshold float64
	IdleWakeLatency    float64

	// Thermal model (shared per socket): temperature follows
	// dT/dt = (P − K·(T − Ambient))/C. Turbo headroom shrinks linearly as
	// T approaches TMax, which is how Turbo and DVFS interact (they
	// compete for the same headroom — paper §I and Finding 8).
	Ambient   float64 // °C
	TMax      float64 // junction limit
	TTurbo    float64 // temperature where turbo starts derating
	ThermalC  float64 // heat capacity (J/°C)
	ThermalK  float64 // conductance to ambient (W/°C)
	CorePower float64 // W per busy core at BaseHz (scales with (f/Base)³)
}

// DefaultCPUConfig models a dual-socket 16-core server in the spirit of
// the paper's Xeon E5-2660 v2 testbed (Table II).
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		Cores:              16,
		Sockets:            2,
		BaseHz:             2.2e9,
		MinHz:              1.2e9,
		TurboHz:            3.0e9,
		Steps:              5,
		Governor:           Ondemand,
		TurboEnabled:       false,
		GovernorTick:       2e-3,
		TransitionCost:     25e-6,
		UpThreshold:        0.60,
		IdleSleepThreshold: 50e-6,
		IdleWakeLatency:    60e-6,
		Ambient:            40,
		TMax:               85,
		TTurbo:             55,
		ThermalC:           0.02, // die-scale heat capacity (τ≈11ms): all-core turbo derates within tens of ms, like PL2→PL1 on real parts
		ThermalK:           1.8,
		CorePower:          14,
	}
}

func (c CPUConfig) validate() error {
	if c.Cores < 1 || c.Sockets < 1 || c.Cores%c.Sockets != 0 {
		return fmt.Errorf("sim: %d cores not divisible across %d sockets", c.Cores, c.Sockets)
	}
	if !(c.MinHz > 0 && c.MinHz <= c.BaseHz && c.BaseHz <= c.TurboHz) {
		return fmt.Errorf("sim: need 0 < MinHz <= BaseHz <= TurboHz (%g, %g, %g)", c.MinHz, c.BaseHz, c.TurboHz)
	}
	if c.Steps < 1 {
		return fmt.Errorf("sim: need >= 1 P-state step, got %d", c.Steps)
	}
	if c.GovernorTick <= 0 {
		return fmt.Errorf("sim: GovernorTick must be positive")
	}
	if c.UpThreshold <= 0 || c.UpThreshold >= 1 {
		return fmt.Errorf("sim: UpThreshold %g out of (0,1)", c.UpThreshold)
	}
	return nil
}

// task is one unit of queued core work.
type task struct {
	cycles   float64
	start    func()
	done     func()
	submitAt float64
	profiled func(ExecProfile)
}

// ExecProfile decomposes one task's time on a core, from submission to
// completion: QueueWait + WakeStall + TransStall + ExecTime spans the whole
// interval exactly. It is the raw material for per-request phase
// attribution (internal/anatomy).
type ExecProfile struct {
	// QueueWait is time spent in the core's run queue before execution.
	QueueWait float64
	// WakeStall is deep-idle (C-state) exit latency charged to this task.
	WakeStall float64
	// TransStall is frequency-transition stall charged to this task.
	TransStall float64
	// ExecTime is Cycles / Freq — execution at the core's current speed.
	ExecTime float64
	// Freq is the frequency the task ran at; Cycles its submitted work.
	Freq, Cycles float64
}

// Core is a single CPU core: a FIFO work queue executed at the core's
// current frequency. Work is expressed in cycles so frequency changes show
// up as execution-time changes.
type Core struct {
	ID     int
	Socket int

	eng  *Engine
	cpu  *CPU
	freq float64
	// stallWake / stallTrans are pending idle-exit and frequency-transition
	// costs charged to the next task, kept separate so profiled executions
	// can attribute them to distinct mechanisms.
	stallWake  float64
	stallTrans float64

	queue   []task
	busy    bool
	busySum float64 // accumulated busy seconds (for utilization)
	winBusy float64 // busy seconds within the current governor window
	// idleSince is when the core last went idle (valid while !busy).
	idleSince float64

	queuedCycles float64 // cycles waiting (including running task's remainder estimate)
}

// Submit enqueues cycles of work; done runs when it completes.
func (c *Core) Submit(cycles float64, done func()) {
	c.SubmitTimed(cycles, nil, done)
}

// SubmitTimed enqueues work with an additional hook that fires when
// execution begins (used to timestamp service start).
func (c *Core) SubmitTimed(cycles float64, start, done func()) {
	c.enqueue(task{cycles: cycles, start: start, done: done})
}

// SubmitProfiled enqueues work whose completion callback receives the exact
// decomposition of its time on the core (queue wait, idle-exit and
// transition stalls, execution time).
func (c *Core) SubmitProfiled(cycles float64, start func(), done func(ExecProfile)) {
	c.enqueue(task{cycles: cycles, start: start, profiled: done})
}

func (c *Core) enqueue(t task) {
	if t.cycles < 0 || math.IsNaN(t.cycles) {
		panic(fmt.Sprintf("sim: negative work %g", t.cycles))
	}
	t.submitAt = c.eng.Now()
	c.queue = append(c.queue, t)
	c.queuedCycles += t.cycles
	if !c.busy {
		// Waking from a deep idle state costs exit latency under the
		// power-saving policy.
		cfg := c.cpu.Config
		if cfg.Governor == Ondemand && cfg.IdleWakeLatency > 0 &&
			c.eng.Now()-c.idleSince > cfg.IdleSleepThreshold {
			c.stallWake += cfg.IdleWakeLatency
			c.cpu.wakeEvents++
		}
		c.runNext()
	}
}

func (c *Core) runNext() {
	if len(c.queue) == 0 {
		c.busy = false
		c.idleSince = c.eng.Now()
		return
	}
	c.busy = true
	t := c.queue[0]
	c.queue = c.queue[1:]
	if t.start != nil {
		t.start()
	}
	prof := ExecProfile{
		QueueWait:  c.eng.Now() - t.submitAt,
		WakeStall:  c.stallWake,
		TransStall: c.stallTrans,
		ExecTime:   t.cycles / c.freq,
		Freq:       c.freq,
		Cycles:     t.cycles,
	}
	dur := prof.ExecTime + prof.WakeStall + prof.TransStall
	c.stallWake, c.stallTrans = 0, 0
	c.busySum += dur
	c.winBusy += dur
	c.eng.Schedule(dur, func() {
		c.queuedCycles -= t.cycles
		if t.done != nil {
			t.done()
		}
		if t.profiled != nil {
			t.profiled(prof)
		}
		c.runNext()
	})
}

// QueueLen returns the number of tasks waiting (excluding the running one).
func (c *Core) QueueLen() int { return len(c.queue) }

// Freq returns the core's current frequency in Hz.
func (c *Core) Freq() float64 { return c.freq }

// setFreq applies a frequency change, charging the transition stall.
func (c *Core) setFreq(hz float64, transitionCost float64) {
	if hz == c.freq {
		return
	}
	c.freq = hz
	c.stallTrans += transitionCost
}

// CPU is the full processor complex: cores, the governor, and the
// per-socket thermal/turbo state.
type CPU struct {
	Config CPUConfig
	Cores  []*Core

	eng        *Engine
	socketTemp []float64
	lastTick   float64
	// turboNow is the per-socket turbo ceiling as of the last tick.
	turboNow []float64
	// transitions counts frequency changes and wakeEvents counts deep-idle
	// exits; both are exposed so experiments can verify the Finding-3/4
	// mechanisms directly.
	transitions uint64
	wakeEvents  uint64
}

// NewCPU builds the processor and starts its governor tick.
func NewCPU(eng *Engine, cfg CPUConfig) (*CPU, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cpu := &CPU{
		Config:     cfg,
		eng:        eng,
		socketTemp: make([]float64, cfg.Sockets),
		turboNow:   make([]float64, cfg.Sockets),
	}
	perSocket := cfg.Cores / cfg.Sockets
	initial := cfg.BaseHz
	if cfg.Governor == Ondemand {
		initial = cfg.MinHz
	}
	for i := 0; i < cfg.Cores; i++ {
		cpu.Cores = append(cpu.Cores, &Core{
			ID:     i,
			Socket: i / perSocket,
			eng:    eng,
			cpu:    cpu,
			freq:   initial,
		})
	}
	for s := range cpu.socketTemp {
		cpu.socketTemp[s] = cfg.Ambient
		cpu.turboNow[s] = cfg.TurboHz
	}
	eng.Schedule(cfg.GovernorTick, cpu.tick)
	return cpu, nil
}

// RefHz is the attribution reference frequency: the hardware's maximum
// (single-core turbo). Execution time beyond cycles/RefHz is P-state/turbo
// ramp deficit — time the request would not have spent on a fully ramped
// core — which makes turbo-off configurations show the deficit even under
// the performance governor.
func (c *CPU) RefHz() float64 { return c.Config.TurboHz }

// Transitions returns the cumulative number of core frequency changes.
func (c *CPU) Transitions() uint64 { return c.transitions }

// WakeEvents returns the cumulative number of deep-idle exits.
func (c *CPU) WakeEvents() uint64 { return c.wakeEvents }

// SocketTemp returns the current modeled temperature of socket s.
func (c *CPU) SocketTemp(s int) float64 { return c.socketTemp[s] }

// Utilization returns mean core utilization since the start of the run.
func (c *CPU) Utilization() float64 {
	if c.eng.Now() == 0 {
		return 0
	}
	sum := 0.0
	for _, core := range c.Cores {
		sum += core.busySum
	}
	return sum / (float64(len(c.Cores)) * c.eng.Now())
}

// tick is the periodic governor + thermal update.
func (c *CPU) tick() {
	cfg := c.Config
	window := cfg.GovernorTick

	// Thermal integration over the last window, per socket.
	for s := 0; s < cfg.Sockets; s++ {
		power := 0.0
		for _, core := range c.Cores {
			if core.Socket != s {
				continue
			}
			util := core.winBusy / window
			rel := core.freq / cfg.BaseHz
			power += util * cfg.CorePower * rel * rel * rel
		}
		t := c.socketTemp[s]
		dT := (power - cfg.ThermalK*(t-cfg.Ambient)) / cfg.ThermalC * window
		t += dT
		if t > cfg.TMax {
			t = cfg.TMax
		}
		if t < cfg.Ambient {
			t = cfg.Ambient
		}
		c.socketTemp[s] = t
		// Turbo derating: full turbo below TTurbo, linearly down to BaseHz
		// at TMax.
		switch {
		case t <= cfg.TTurbo:
			c.turboNow[s] = cfg.TurboHz
		case t >= cfg.TMax:
			c.turboNow[s] = cfg.BaseHz
		default:
			frac := (t - cfg.TTurbo) / (cfg.TMax - cfg.TTurbo)
			c.turboNow[s] = cfg.TurboHz - frac*(cfg.TurboHz-cfg.BaseHz)
		}
	}

	// Per-core frequency selection.
	for _, core := range c.Cores {
		util := core.winBusy / window
		core.winBusy = 0
		target := c.targetFreq(core, util)
		if target != core.freq {
			c.transitions++
			core.setFreq(target, cfg.TransitionCost)
		}
	}
	c.eng.Schedule(window, c.tick)
}

// targetFreq implements the governor policy for one core.
func (c *CPU) targetFreq(core *Core, util float64) float64 {
	cfg := c.Config
	ceiling := cfg.BaseHz
	if cfg.TurboEnabled {
		ceiling = c.turboNow[core.Socket]
	}
	switch cfg.Governor {
	case Performance:
		return ceiling
	case Ondemand:
		if util >= cfg.UpThreshold {
			return ceiling
		}
		// Scale down: pick the lowest step whose capacity keeps projected
		// utilization under the threshold (Linux ondemand's proportional
		// scaling), quantized to the configured P-states.
		need := util * core.freq / cfg.UpThreshold
		if need < cfg.MinHz {
			need = cfg.MinHz
		}
		stepSize := (cfg.BaseHz - cfg.MinHz) / float64(cfg.Steps)
		if stepSize <= 0 {
			return cfg.BaseHz
		}
		k := math.Ceil((need - cfg.MinHz) / stepSize)
		f := cfg.MinHz + k*stepSize
		if f > cfg.BaseHz {
			f = cfg.BaseHz
		}
		return f
	default:
		return cfg.BaseHz
	}
}
