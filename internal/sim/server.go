package sim

import (
	"fmt"
	"math"

	"treadmill/internal/anatomy"
	"treadmill/internal/dist"
	"treadmill/internal/infersim"
)

// NUMAPolicy is the memory-placement policy for connection buffers (paper
// Table III: "numa" factor; low level = same-node, high = interleave).
type NUMAPolicy int

const (
	// NUMASameNode allocates each connection's buffers on node 0 until it
	// fills. Workers on socket 0 access locally; workers on socket 1 pay
	// the full remote penalty — so half the connections are fast and half
	// slow (paper Finding 6 explains the same mechanism).
	NUMASameNode NUMAPolicy = iota
	// NUMAInterleave round-robins pages across nodes, so every worker
	// pays a partial remote penalty on most requests and loses spatial
	// locality; on average it is worse than same-node.
	NUMAInterleave
)

// String returns the policy name as used in the paper.
func (p NUMAPolicy) String() string {
	if p == NUMASameNode {
		return "same-node"
	}
	return "interleave"
}

// NICAffinity is the mapping of RSS interrupt queues to cores (paper Table
// III: "nic" factor; low = same-node, high = all-nodes).
type NICAffinity int

const (
	// NICSameNode maps all interrupt queues to cores on socket 0,
	// concentrating kernel work there.
	NICSameNode NICAffinity = iota
	// NICAllNodes spreads interrupt queues across every core.
	NICAllNodes
)

// String returns the affinity name as used in the paper.
func (a NICAffinity) String() string {
	if a == NICSameNode {
		return "same-node"
	}
	return "all-nodes"
}

// ServerConfig describes the simulated server under test.
type ServerConfig struct {
	CPU CPUConfig
	// RSSQueues is the number of NIC interrupt queues (the paper's NIC
	// exposes a 4-bit hash = 16 queues).
	RSSQueues   int
	NICAffinity NICAffinity
	NUMA        NUMAPolicy
	// IRQCycles is kernel interrupt-handling work per incoming request.
	IRQCycles float64
	// UserCycles samples the user-space service demand per request.
	UserCycles dist.Sampler
	// RemotePenaltyCycles is the extra per-request cost of fully remote
	// buffer access.
	RemotePenaltyCycles float64
	// InterleaveFraction is the effective fraction of the remote penalty
	// paid per request under NUMAInterleave (spatial locality loss makes
	// it exceed the naive 0.5 for two nodes).
	InterleaveFraction float64
	// Forward, when non-nil, turns the server into an mcrouter-style
	// proxy: after user-space work (parse + route) the request waits a
	// backend round trip sampled from Forward before the response departs.
	Forward dist.Sampler
	// Inference, when non-nil, replaces the user-space service stage with
	// the two-phase LLM-inference model: after interrupt handling the
	// request enters an iteration batcher (bounded admission queue,
	// prefill linear in input tokens, decode linear in output tokens).
	// Latency then decomposes into the Infer* anatomy phases instead of
	// Service, and UserCycles is unused.
	Inference *InferenceConfig
	// FanDegree, when > 1 with Forward set, scatter-gathers each request
	// over this many backend legs sampled independently from Forward; the
	// response departs when the slowest leg returns. The fastest leg is
	// accounted as Backend, the slowest-minus-fastest gap as FanStraggler.
	FanDegree int
	// FanMergeCost is fixed response-reassembly time paid after the
	// slowest leg of a fan-out (FanMerge phase).
	FanMergeCost float64
	// RandomPlacement assigns connections round-robin over a randomly
	// shuffled core order instead of core-ID order. Per-core connection
	// counts stay balanced (as memcached's round-robin guarantees), but
	// WHICH connections share a core with the interrupt-heavy cores and
	// which land on the remote NUMA socket is re-rolled on every server
	// (re)start. Combined with unequal per-connection load this models
	// the run-to-run thread/connection-to-resource remapping behind
	// performance hysteresis (paper §II-D).
	RandomPlacement bool
}

// DefaultServerConfig models the memcached testbed: ~16µs mean total
// demand per request at 2.2GHz, so 100k RPS ≈ 10% utilization and 800k ≈
// 80%, matching the paper's §III-C setup.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		CPU:                 DefaultCPUConfig(),
		RSSQueues:           16,
		NICAffinity:         NICSameNode,
		NUMA:                NUMASameNode,
		IRQCycles:           3500,
		UserCycles:          dist.LognormalFromMoments(31700, 0.35),
		RemotePenaltyCycles: 5200,
		InterleaveFraction:  0.75,
	}
}

// McrouterServerConfig models the protocol-router workload: heavier
// CPU-bound deserialization (which Turbo accelerates, paper Finding 8) and
// a fast local backend pool behind it.
func McrouterServerConfig() ServerConfig {
	cfg := DefaultServerConfig()
	cfg.UserCycles = dist.LognormalFromMoments(39000, 0.20)
	cfg.IRQCycles = 4000
	cfg.RemotePenaltyCycles = 2600
	// Backend round trip: lightly loaded memcacheds one hop away.
	cfg.Forward = dist.LognormalFromMoments(45e-6, 0.15)
	return cfg
}

// InferenceConfig attaches the two-phase inference service to a simulated
// server. Token counts are sampled server-side (they are properties of the
// request body the client sends; sampling here keeps client hot paths
// untouched).
type InferenceConfig struct {
	// Model is the batching/cost model shared with the real TCP server.
	Model infersim.Config
	// InTokens and OutTokens sample per-request prompt and generation
	// lengths. Samples are rounded and clamped to >= 1 token.
	InTokens, OutTokens dist.Sampler
}

// InferenceServerConfig models a single-accelerator LLM inference server:
// the default infersim cost model with lognormal prompt (~256 tokens) and
// generation (~64 tokens) lengths, ≈100µs own compute per request.
func InferenceServerConfig() ServerConfig {
	cfg := DefaultServerConfig()
	cfg.Inference = &InferenceConfig{
		Model:     infersim.DefaultConfig(),
		InTokens:  dist.LognormalFromMoments(256, 0.5),
		OutTokens: dist.LognormalFromMoments(64, 0.3),
	}
	return cfg
}

// FanoutServerConfig models a scatter-gather root over n shard backends:
// mcrouter-style parse/route work, then n independent backend legs with a
// wider per-leg spread so the slowest of n visibly inflates the tail.
func FanoutServerConfig(n int) ServerConfig {
	cfg := McrouterServerConfig()
	cfg.FanDegree = n
	cfg.FanMergeCost = 6e-6
	cfg.Forward = dist.LognormalFromMoments(45e-6, 0.5)
	return cfg
}

func (c ServerConfig) validate() error {
	if err := c.CPU.validate(); err != nil {
		return err
	}
	if c.Inference != nil {
		if err := c.Inference.Model.Validate(); err != nil {
			return err
		}
		if c.Inference.InTokens == nil || c.Inference.OutTokens == nil {
			return fmt.Errorf("sim: inference token samplers required")
		}
	}
	if c.FanDegree > 1 && c.Forward == nil {
		return fmt.Errorf("sim: FanDegree %d needs a Forward sampler", c.FanDegree)
	}
	if c.FanMergeCost < 0 || math.IsNaN(c.FanMergeCost) {
		return fmt.Errorf("sim: FanMergeCost %g invalid: want >= 0", c.FanMergeCost)
	}
	if c.RSSQueues < 1 {
		return fmt.Errorf("sim: need >= 1 RSS queue, got %d", c.RSSQueues)
	}
	if c.IRQCycles < 0 || c.RemotePenaltyCycles < 0 {
		return fmt.Errorf("sim: cycle costs must be >= 0")
	}
	if c.UserCycles == nil {
		return fmt.Errorf("sim: UserCycles sampler required")
	}
	if c.InterleaveFraction < 0 || c.InterleaveFraction > 1 {
		return fmt.Errorf("sim: InterleaveFraction %g out of [0,1]", c.InterleaveFraction)
	}
	return nil
}

// Server is the simulated machine under test.
type Server struct {
	cfg ServerConfig
	eng *Engine
	cpu *CPU
	rng *dist.RNG

	rssMap []int // interrupt queue -> core ID

	nextWorker int
	placement  []int       // core assignment order (shuffled when RandomPlacement)
	workerOf   map[int]int // connID -> worker core ID

	infer *infersim.Batcher

	inflight  int
	completed uint64
	shed      uint64
}

// engineClock adapts the discrete-event engine to infersim.Clock, so the
// same batcher mechanics run in virtual time.
type engineClock struct{ eng *Engine }

func (c engineClock) Now() float64                    { return c.eng.Now() }
func (c engineClock) After(delay float64, fn func()) { c.eng.Schedule(delay, fn) }

// NewServer builds a server on the engine. rng drives service-time draws.
func NewServer(eng *Engine, cfg ServerConfig, rng *dist.RNG) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cpu, err := NewCPU(eng, cfg.CPU)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, eng: eng, cpu: cpu, rng: rng, workerOf: make(map[int]int)}
	if cfg.Inference != nil {
		s.infer, err = infersim.NewBatcher(cfg.Inference.Model, engineClock{eng})
		if err != nil {
			return nil, err
		}
	}
	s.rssMap = make([]int, cfg.RSSQueues)
	perSocket := cfg.CPU.Cores / cfg.CPU.Sockets
	for q := range s.rssMap {
		switch cfg.NICAffinity {
		case NICSameNode:
			s.rssMap[q] = q % perSocket // socket-0 cores only
		default:
			s.rssMap[q] = q % cfg.CPU.Cores
		}
	}
	return s, nil
}

// CPU exposes the processor model (for utilization and transition probes).
func (s *Server) CPU() *CPU { return s.cpu }

// Inflight returns the number of requests currently inside the server.
func (s *Server) Inflight() int { return s.inflight }

// Completed returns the number of requests fully served.
func (s *Server) Completed() uint64 { return s.completed }

// Shed returns the number of requests rejected at the inference admission
// queue (they still receive an immediate error response).
func (s *Server) Shed() uint64 { return s.shed }

// InferBatcher exposes the inference batcher for occupancy probes; nil
// when the server is not an inference server.
func (s *Server) InferBatcher() *infersim.Batcher { return s.infer }

// Connect registers a connection: it is assigned a worker core round-robin
// (as memcached distributes connections over its threads) and its buffer
// placement is fixed by the NUMA policy for the connection's lifetime.
func (s *Server) Connect(connID int) {
	if _, ok := s.workerOf[connID]; ok {
		return
	}
	if s.placement == nil {
		s.placement = make([]int, s.cfg.CPU.Cores)
		for i := range s.placement {
			s.placement[i] = i
		}
		if s.cfg.RandomPlacement {
			s.rng.Shuffle(len(s.placement), func(i, j int) {
				s.placement[i], s.placement[j] = s.placement[j], s.placement[i]
			})
		}
	}
	core := s.placement[s.nextWorker%len(s.placement)]
	s.nextWorker++
	s.workerOf[connID] = core
}

// rssHash mixes a connection ID the way a NIC's receive-side-scaling hash
// mixes the flow tuple, so queues spread uniformly regardless of the ID
// pattern (a plain modulo aliases structured IDs onto few queues).
func rssHash(connID int) int {
	x := uint64(connID)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & 0x7fffffff)
}

// numaPenalty returns the extra cycles a request on connID pays for memory
// placement, given the worker core that will serve it.
func (s *Server) numaPenalty(workerCore int) float64 {
	socket := s.cpu.Cores[workerCore].Socket
	switch s.cfg.NUMA {
	case NUMASameNode:
		if socket == 0 {
			return 0
		}
		return s.cfg.RemotePenaltyCycles
	default: // interleave
		return s.cfg.RemotePenaltyCycles * s.cfg.InterleaveFraction
	}
}

// Arrive is called when a request packet reaches the server NIC. respond
// runs when the response is ready to leave the server.
func (s *Server) Arrive(req *Request, respond func()) {
	s.inflight++
	req.ArriveServer = s.eng.Now()
	queue := rssHash(req.ConnID) % s.cfg.RSSQueues
	irqCore := s.cpu.Cores[s.rssMap[queue]]
	workerCore, ok := s.workerOf[req.ConnID]
	if !ok {
		// Auto-connect keeps simple experiments terse.
		s.Connect(req.ConnID)
		workerCore = s.workerOf[req.ConnID]
	}
	worker := s.cpu.Cores[workerCore]
	// Kernel interrupt handling on the RSS-mapped core, then user-space
	// service on the connection's worker core. Both executions are
	// profiled so every span lands in the request's phase vector: queue
	// wait, C-state exit, ramp deficit, NUMA penalty, pure service.
	irqCore.SubmitProfiled(s.cfg.IRQCycles, nil, func(irqProf ExecProfile) {
		s.account(req, irqProf, s.cfg.IRQCycles, 0, anatomy.RSSQueue)
		if s.infer != nil {
			s.arriveInference(req, respond)
			return
		}
		userCycles := s.cfg.UserCycles.Sample(s.rng)
		numaCycles := s.numaPenalty(workerCore)
		worker.SubmitProfiled(userCycles+numaCycles,
			func() { req.ServiceStart = s.eng.Now() },
			func(p ExecProfile) {
				s.account(req, p, userCycles, numaCycles, anatomy.ServerQueue)
				if s.cfg.Forward != nil {
					if s.cfg.FanDegree > 1 {
						s.fanout(req, respond)
						return
					}
					// mcrouter: wait for the backend round trip.
					backend := s.cfg.Forward.Sample(s.rng)
					req.Phases.Add(anatomy.Backend, backend)
					s.eng.Schedule(backend, func() {
						s.finish(req, respond)
					})
					return
				}
				s.finish(req, respond)
			})
	})
}

// arriveInference hands the request to the iteration batcher. The span
// report tiles the batcher residence exactly, so together with the
// interrupt-stage accounting the phase-sum invariant holds unchanged.
func (s *Server) arriveInference(req *Request, respond func()) {
	in := tokenRound(s.cfg.Inference.InTokens.Sample(s.rng))
	out := tokenRound(s.cfg.Inference.OutTokens.Sample(s.rng))
	submitAt := s.eng.Now()
	err := s.infer.Submit(in, out, func(rep infersim.Report) {
		req.ServiceStart = submitAt + rep.QueueWait
		req.Phases.Add(anatomy.InferQueue, rep.QueueWait)
		req.Phases.Add(anatomy.InferPrefill, rep.Prefill)
		req.Phases.Add(anatomy.InferDecode, rep.Decode)
		req.Phases.Add(anatomy.InferBatch, rep.BatchExtra)
		s.finish(req, respond)
	})
	if err != nil {
		// Admission queue full: shed with an immediate error response.
		s.shed++
		req.ServiceStart = submitAt
		s.finish(req, respond)
	}
}

// tokenRound converts a sampled token count to a valid integer length.
func tokenRound(v float64) int {
	n := int(v + 0.5)
	if n < 1 {
		return 1
	}
	return n
}

// fanout scatter-gathers over FanDegree backend legs: the response can
// only leave when the slowest leg is back, then pays the merge cost. The
// fastest leg is the unavoidable backend time; the rest of the wait is
// pure straggler inflation (the tail-at-scale effect).
func (s *Server) fanout(req *Request, respond func()) {
	fastest, slowest := math.Inf(1), 0.0
	for i := 0; i < s.cfg.FanDegree; i++ {
		leg := s.cfg.Forward.Sample(s.rng)
		if leg < fastest {
			fastest = leg
		}
		if leg > slowest {
			slowest = leg
		}
	}
	req.Phases.Add(anatomy.Backend, fastest)
	req.Phases.Add(anatomy.FanStraggler, slowest-fastest)
	if s.cfg.FanMergeCost > 0 {
		req.Phases.Add(anatomy.FanMerge, s.cfg.FanMergeCost)
	}
	s.eng.Schedule(slowest+s.cfg.FanMergeCost, func() {
		s.finish(req, respond)
	})
}

// account attributes one profiled core execution to req's phases. The
// service and NUMA cycles are valued at the reference (maximum turbo)
// frequency; everything the execution cost beyond that — running below max
// frequency plus any transition stalls — is P-state/turbo ramp deficit.
// The four spans sum exactly to the profile's submit→complete interval.
func (s *Server) account(req *Request, p ExecProfile, serviceCycles, numaCycles float64, queuePhase anatomy.Phase) {
	ref := s.cpu.RefHz()
	req.Phases.Add(queuePhase, p.QueueWait)
	req.Phases.Add(anatomy.CStateWake, p.WakeStall)
	req.Phases.Add(anatomy.Service, serviceCycles/ref)
	if numaCycles > 0 {
		req.Phases.Add(anatomy.NUMAPenalty, numaCycles/ref)
	}
	req.Phases.Add(anatomy.PStateRamp, p.TransStall+p.ExecTime-(serviceCycles+numaCycles)/ref)
}

func (s *Server) finish(req *Request, respond func()) {
	req.ServerDone = s.eng.Now()
	s.inflight--
	s.completed++
	respond()
}
