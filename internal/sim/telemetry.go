package sim

import (
	"treadmill/internal/telemetry"
)

// drained reports whether the cluster can generate no further load: every
// client has been stopped and no request is in flight. Periodic probes use
// this (plus an explicit horizon) to stop self-rescheduling — the governor
// tick also self-reschedules, so "engine queue empty" never happens and an
// unconditional probe would spin the event queue forever on a drain run.
func (c *Cluster) drained() bool {
	for _, cl := range c.Clients {
		if !cl.Stopped() {
			return false
		}
	}
	return c.TotalOutstanding() == 0
}

// probeEvery schedules sample every period seconds until the cluster is
// drained or the next firing would pass horizon (horizon <= 0 means no
// horizon — drain is then the only stop condition).
func (c *Cluster) probeEvery(period, horizon float64, sample func()) {
	var probe func()
	probe = func() {
		sample()
		if c.drained() {
			return
		}
		if horizon > 0 && c.Eng.Now()+period > horizon {
			return
		}
		c.Eng.Schedule(period, probe)
	}
	if horizon > 0 && c.Eng.Now()+period > horizon {
		return
	}
	c.Eng.Schedule(period, probe)
}

// Register wires the cluster into a telemetry registry: engine event
// counts and a periodically sampled total-outstanding gauge — the in-sim
// equivalent of the queue-depth and event-loop metrics a real deployment
// exports. period and horizon are in simulated seconds; probing stops at
// the horizon (or, with horizon <= 0, once the cluster drains) so the
// probe cannot keep an idle simulation's event queue spinning.
//
// Metrics:
//
//	sim.events_processed   — engine events executed so far (gauge)
//	sim.events_pending     — engine queue depth at the last sample (gauge)
//	sim.outstanding        — in-flight requests at the last sample (gauge)
//	sim.outstanding_max    — high-water mark of in-flight requests (gauge)
//	sim.outstanding_sum    — sum of sampled depths (counter; divide by
//	sim.outstanding_samples  for the time-averaged queue depth)
//
// A nil registry or non-positive period is a no-op.
func (c *Cluster) Register(reg *telemetry.Registry, period, horizon float64) {
	if reg == nil || period <= 0 {
		return
	}
	events := reg.Gauge("sim.events_processed")
	pending := reg.Gauge("sim.events_pending")
	outst := reg.Gauge("sim.outstanding")
	outstMax := reg.Gauge("sim.outstanding_max")
	outstSum := reg.Counter("sim.outstanding_sum")
	samples := reg.Counter("sim.outstanding_samples")
	c.probeEvery(period, horizon, func() {
		n := c.TotalOutstanding()
		outst.Set(int64(n))
		outstMax.SetMax(int64(n))
		outstSum.Add(uint64(n))
		samples.Inc()
		events.Set(int64(c.Eng.Processed()))
		pending.Set(int64(c.Eng.Pending()))
	})
}
