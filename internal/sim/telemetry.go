package sim

import (
	"treadmill/internal/telemetry"
)

// Register wires the cluster into a telemetry registry: engine event
// counts and a periodically sampled total-outstanding gauge — the in-sim
// equivalent of the queue-depth and event-loop metrics a real deployment
// exports. period is in simulated seconds.
//
// Metrics:
//
//	sim.events_processed   — engine events executed so far (gauge)
//	sim.events_pending     — engine queue depth at the last sample (gauge)
//	sim.outstanding        — in-flight requests at the last sample (gauge)
//	sim.outstanding_max    — high-water mark of in-flight requests (gauge)
//	sim.outstanding_sum    — sum of sampled depths (counter; divide by
//	sim.outstanding_samples  for the time-averaged queue depth)
//
// A nil registry or non-positive period is a no-op.
func (c *Cluster) Register(reg *telemetry.Registry, period float64) {
	if reg == nil || period <= 0 {
		return
	}
	events := reg.Gauge("sim.events_processed")
	pending := reg.Gauge("sim.events_pending")
	outst := reg.Gauge("sim.outstanding")
	outstMax := reg.Gauge("sim.outstanding_max")
	outstSum := reg.Counter("sim.outstanding_sum")
	samples := reg.Counter("sim.outstanding_samples")
	var probe func()
	probe = func() {
		n := c.TotalOutstanding()
		outst.Set(int64(n))
		outstMax.SetMax(int64(n))
		outstSum.Add(uint64(n))
		samples.Inc()
		events.Set(int64(c.Eng.Processed()))
		pending.Set(int64(c.Eng.Pending()))
		c.Eng.Schedule(period, probe)
	}
	c.Eng.Schedule(period, probe)
}
