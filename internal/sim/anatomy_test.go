package sim

import (
	"math"
	"testing"

	"treadmill/internal/anatomy"
	"treadmill/internal/dist"
)

// collectRequests drives a cluster and returns every post-warmup completed
// request (the Request structs are not reused, so retaining them is safe).
func collectRequests(t *testing.T, mutate func(*ClusterConfig), totalRate, warmup, dur float64) []*Request {
	t.Helper()
	cfg := DefaultClusterConfig(4)
	mutate(&cfg)
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*Request
	for _, c := range cl.Clients {
		c.OnComplete = func(r *Request) {
			if r.Created > warmup {
				reqs = append(reqs, r)
			}
		}
		if err := c.StartOpenLoop(totalRate/float64(len(cl.Clients)), 8); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(warmup + dur)
	return reqs
}

// TestPhaseSumInvariant is the anatomy ledger's ground-truth check: for every
// completed request, across seeds and across every mechanism the simulator
// models (DVFS governors, turbo, C-state wakes, NUMA penalties, RSS
// spreading, mcrouter backend forwarding, batched callbacks), the per-phase
// spans must tile [Created, ClientDone] exactly — the vector sums to
// MeasuredLatency() within 1e-9 and no span is negative. A violation means a
// span was double-counted or dropped as mechanisms evolved.
func TestPhaseSumInvariant(t *testing.T) {
	configs := []struct {
		name    string
		mutate  func(*ClusterConfig)
		rate    float64
		dur     float64 // 0 = default 0.06s; inference runs at ~1000x lower rates and needs longer
		minReqs int     // 0 = default 1000
	}{
		{"default-ondemand", func(c *ClusterConfig) {}, 150000, 0, 0},
		{"performance-turbo", func(c *ClusterConfig) {
			c.Server.CPU.Governor = Performance
			c.Server.CPU.TurboEnabled = true
		}, 150000, 0, 0},
		{"high-load", func(c *ClusterConfig) {
			c.Server.CPU.Governor = Performance
		}, 600000, 0, 0},
		{"numa-interleave-spread", func(c *ClusterConfig) {
			c.Server.NUMA = NUMAInterleave
			c.Server.NICAffinity = NICAllNodes
			c.Server.RandomPlacement = true
		}, 150000, 0, 0},
		{"mcrouter-backend", func(c *ClusterConfig) {
			c.Server = McrouterServerConfig()
		}, 120000, 0, 0},
		{"batched-callback", func(c *ClusterConfig) {
			for i := range c.Clients {
				c.Clients[i].Config.Callback = BatchedCallback
				c.Clients[i].Config.PollPeriod = 50e-6
			}
		}, 100000, 0, 0},
		{"fanout-8", func(c *ClusterConfig) {
			c.Server = FanoutServerConfig(8)
		}, 120000, 0, 0},
		{"inference-batched", func(c *ClusterConfig) {
			c.Server = InferenceServerConfig()
		}, 3200, 0.5, 1000},
		{"inference-serial-bursty", func(c *ClusterConfig) {
			c.Server = InferenceServerConfig()
			c.Server.Inference.Model.MaxBatch = 1
			for i := range c.Clients {
				c.Clients[i].Config.Arrival = func(rate float64) dist.Sampler {
					m, err := dist.NewMMPP2FromRate(rate, 4, 0.2, 0.02)
					if err != nil {
						panic(err)
					}
					return m
				}
			}
		}, 2400, 0.5, 800},
	}
	for _, tc := range configs {
		dur, minReqs := tc.dur, tc.minReqs
		if dur == 0 {
			dur = 0.06
		}
		if minReqs == 0 {
			minReqs = 1000
		}
		for _, seed := range []uint64{1, 7} {
			reqs := collectRequests(t, func(c *ClusterConfig) {
				tc.mutate(c)
				c.Seed = seed
			}, tc.rate, 0.02, dur)
			if len(reqs) < minReqs {
				t.Fatalf("%s seed %d: only %d requests", tc.name, seed, len(reqs))
			}
			for _, r := range reqs {
				got, want := r.Phases.Sum(), r.MeasuredLatency()
				if d := math.Abs(got - want); d > 1e-9 {
					t.Fatalf("%s seed %d: phase sum %.12g != measured %.12g (|diff| %g)\nphases: %+v",
						tc.name, seed, got, want, d, r.Phases)
				}
				for p, span := range r.Phases {
					if span < 0 {
						t.Fatalf("%s seed %d: negative span %g for phase %v",
							tc.name, seed, span, anatomy.Phase(p))
					}
				}
			}
		}
	}
}

// TestAnatomyFindingTurboOffRampDeficit cross-checks the factorial study's
// statistical attribution mechanistically: the regression says the turbo
// factor moves the tail, and the anatomy must show WHERE. At a load cool
// enough for sustained turbo (performance governor, ~4% utilization), the
// P99 gap between the turbo-off and turbo-on cells must be dominated by the
// pstate_ramp span — the extra execution time of running at BaseHz instead
// of TurboHz — not by queueing or service-demand differences.
func TestAnatomyFindingTurboOffRampDeficit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	run := func(turbo bool) *anatomy.Breakdown {
		agg, err := anatomy.NewAggregator(anatomy.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultClusterConfig(8)
		cfg.Server.CPU.Governor = Performance
		cfg.Server.CPU.TurboEnabled = turbo
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cl.Clients {
			c.OnComplete = func(r *Request) {
				if r.Created > 0.05 {
					agg.Record(r.MeasuredLatency(), r.Phases)
				}
			}
			if err := c.StartOpenLoop(40000.0/8, 8); err != nil {
				t.Fatal(err)
			}
		}
		cl.Run(0.35)
		return agg.Finalize()
	}
	off, on := run(false), run(true)
	if off.LowConfidence || on.LowConfidence {
		t.Fatalf("breakdowns low-confidence: off=%q on=%q", off.Reason, on.Reason)
	}

	// Turbo-off must pay a visible ramp deficit at the tail that turbo-on
	// does not (sustained turbo executes at the reference frequency).
	offRamp := off.Tail.Mean[anatomy.PStateRamp]
	onRamp := on.Tail.Mean[anatomy.PStateRamp]
	if offRamp < 5e-6 {
		t.Fatalf("turbo-off tail ramp deficit %g too small to attribute", offRamp)
	}
	if onRamp > offRamp/3 {
		t.Errorf("turbo-on tail ramp %g not clearly below turbo-off %g", onRamp, offRamp)
	}

	// The turbo factor must move the P99, and the movement must land in the
	// ramp span: it is the largest phase of the tail-cut difference and
	// accounts for at least half the total gap.
	if off.P99 <= on.P99 {
		t.Fatalf("turbo-off P99 %g should exceed turbo-on P99 %g", off.P99, on.P99)
	}
	diff := off.Tail.Mean.Minus(on.Tail.Mean)
	if got := diff.ArgMax(); got != anatomy.PStateRamp {
		t.Errorf("largest tail-cut difference is %v, want pstate_ramp\ndiff: %+v", got, diff)
	}
	gap := off.Tail.MeanTotal - on.Tail.MeanTotal
	if gap <= 0 {
		t.Fatalf("tail-cut mean gap %g not positive", gap)
	}
	if diff[anatomy.PStateRamp] < 0.5*gap {
		t.Errorf("ramp deficit %g explains under half the %g tail gap", diff[anatomy.PStateRamp], gap)
	}

	// Within the turbo-off cell, the slowest requests pay more ramp deficit
	// than typical ones (tail excess is positive).
	if ex := off.TailExcess()[anatomy.PStateRamp]; ex <= 0 {
		t.Errorf("turbo-off ramp tail excess %g should be positive", ex)
	}
}
