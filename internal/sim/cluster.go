package sim

import (
	"fmt"

	"treadmill/internal/dist"
)

// Rack identifies a client's placement relative to the server. Cross-rack
// clients traverse an extra aggregation hop with higher propagation delay —
// the source of the per-client bias in the paper's Fig. 2.
type Rack int

const (
	// SameRack places the client behind the server's top-of-rack switch.
	SameRack Rack = iota
	// RemoteRack places the client one aggregation hop away.
	RemoteRack
)

// ClientSpec is one client machine in a cluster.
type ClientSpec struct {
	Config ClientConfig
	Rack   Rack
}

// ClusterConfig wires a full testbed: one server and a set of clients.
type ClusterConfig struct {
	Server ServerConfig
	// Clients lists the load-generating machines.
	Clients []ClientSpec
	// LinkBandwidthBps is the NIC line rate (default models 10GbE).
	LinkBandwidthBps float64
	// IntraRackDelay / CrossRackDelay are one-way propagation+switching
	// delays.
	IntraRackDelay float64
	CrossRackDelay float64
	// Seed makes the whole cluster deterministic.
	Seed uint64
}

// DefaultClusterConfig builds the paper's §III-C testbed shape: one server
// and n identical same-rack Treadmill-style clients over 10GbE.
func DefaultClusterConfig(nClients int) ClusterConfig {
	cfg := ClusterConfig{
		Server:           DefaultServerConfig(),
		LinkBandwidthBps: 10e9,
		IntraRackDelay:   18e-6,
		CrossRackDelay:   85e-6,
		Seed:             1,
	}
	for i := 0; i < nClients; i++ {
		cfg.Clients = append(cfg.Clients, ClientSpec{Config: DefaultClientConfig(), Rack: SameRack})
	}
	return cfg
}

// Cluster is an instantiated testbed ready to generate load.
type Cluster struct {
	Eng     *Engine
	Server  *Server
	Clients []*Client

	cfg ClusterConfig
}

// NewCluster instantiates the testbed.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Clients) == 0 {
		return nil, fmt.Errorf("sim: cluster needs at least one client")
	}
	if cfg.LinkBandwidthBps <= 0 {
		return nil, fmt.Errorf("sim: link bandwidth must be positive")
	}
	if cfg.IntraRackDelay < 0 || cfg.CrossRackDelay < cfg.IntraRackDelay {
		return nil, fmt.Errorf("sim: need 0 <= intra-rack delay <= cross-rack delay")
	}
	eng := &Engine{}
	root := dist.NewRNG(cfg.Seed)
	srv, err := NewServer(eng, cfg.Server, root.Fork())
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Eng: eng, Server: srv, cfg: cfg}
	for i, spec := range cfg.Clients {
		delay := cfg.IntraRackDelay
		if spec.Rack == RemoteRack {
			delay = cfg.CrossRackDelay
		}
		to, err := NewLink(eng, cfg.LinkBandwidthBps, delay)
		if err != nil {
			return nil, err
		}
		from, err := NewLink(eng, cfg.LinkBandwidthBps, delay)
		if err != nil {
			return nil, err
		}
		c, err := NewClient(i, eng, spec.Config, root.Fork(), srv, to, from)
		if err != nil {
			return nil, fmt.Errorf("sim: client %d: %w", i, err)
		}
		cl.Clients = append(cl.Clients, c)
	}
	return cl, nil
}

// TotalOutstanding returns the number of requests in flight across all
// clients — the quantity whose distribution the paper's Fig. 1 compares
// between open- and closed-loop controllers.
func (c *Cluster) TotalOutstanding() int {
	n := 0
	for _, cl := range c.Clients {
		n += cl.Outstanding()
	}
	return n
}

// SampleOutstanding installs a periodic probe that appends
// TotalOutstanding to out every period seconds until the cluster drains
// (all clients stopped, nothing in flight).
func (c *Cluster) SampleOutstanding(period float64, out *[]int) {
	c.probeEvery(period, 0, func() {
		*out = append(*out, c.TotalOutstanding())
	})
}

// StopAll halts generation on every client.
func (c *Cluster) StopAll() {
	for _, cl := range c.Clients {
		cl.Stop()
	}
}

// Run advances simulated time to the given horizon.
func (c *Cluster) Run(until float64) { c.Eng.Run(until) }
