package server

import (
	"bufio"
	"net"
	"testing"
	"time"

	"treadmill/internal/protocol"
	"treadmill/internal/rtprobe"
)

// timedServer boots a loopback server, optionally with a runtime probe.
func timedServer(t testing.TB, probe *rtprobe.Sampler) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Probe = probe
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

type rawConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

func dialRaw(t testing.TB, addr string) *rawConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

func (c *rawConn) roundTrip(t testing.TB, req *protocol.Request) *protocol.Response {
	t.Helper()
	if err := protocol.WriteRequest(c.bw, req); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.ParseResponse(c.br, req.Op)
	if err != nil {
		t.Fatalf("%s response: %v", req.Op, err)
	}
	return resp
}

func (c *rawConn) trailer(t testing.TB) *protocol.ServerTiming {
	t.Helper()
	st, err := protocol.ParseServerTiming(c.br)
	if err != nil {
		t.Fatalf("server-timing trailer: %v", err)
	}
	return st
}

// TestServerTimingTrailer exercises the opt-in timing protocol end to end
// over a raw connection: negotiation, per-response ST trailers with sane
// spans, probe-supplied GC/sched fields, and clean teardown via timing off.
func TestServerTimingTrailer(t *testing.T) {
	probe := rtprobe.NewSampler(rtprobe.Config{Interval: time.Millisecond})
	probe.Start()
	defer probe.Stop()
	srv := timedServer(t, probe)
	c := dialRaw(t, srv.Addr())

	// Before negotiation: plain responses, no trailers (a trailer here would
	// desync the next round trip's framing).
	if resp := c.roundTrip(t, &protocol.Request{Op: protocol.OpSet, Key: "k", Value: []byte("v")}); resp.Status != "STORED" {
		t.Fatalf("set: %q", resp.Status)
	}

	if resp := c.roundTrip(t, &protocol.Request{Op: protocol.OpTiming, TimingOn: true}); resp.Status != "TIMING_ON" {
		t.Fatalf("timing on: %q", resp.Status)
	}

	// Every subsequent response carries an ST trailer with non-negative
	// spans and nonzero wall time.
	for i, req := range []*protocol.Request{
		{Op: protocol.OpGet, Key: "k"},
		{Op: protocol.OpSet, Key: "k2", Value: []byte("vv")},
		{Op: protocol.OpGet, Key: "absent"},
		{Op: protocol.OpVersion},
	} {
		c.roundTrip(t, req)
		st := c.trailer(t)
		if st.ParseNs < 0 || st.StoreNs < 0 || st.SerializeNs < 0 || st.WriteNs < 0 || st.GCNs < 0 || st.SchedNs < 0 {
			t.Fatalf("req %d: negative span: %+v", i, st)
		}
		if st.WallNs() <= 0 {
			t.Errorf("req %d: zero wall time: %+v", i, st)
		}
	}

	if resp := c.roundTrip(t, &protocol.Request{Op: protocol.OpTiming}); resp.Status != "TIMING_OFF" {
		t.Fatalf("timing off: %q", resp.Status)
	}
	// After timing off, responses must carry no trailer: two back-to-back
	// round trips only frame correctly if nothing extra sits on the wire.
	c.roundTrip(t, &protocol.Request{Op: protocol.OpGet, Key: "k"})
	if resp := c.roundTrip(t, &protocol.Request{Op: protocol.OpVersion}); resp.Status == "" {
		t.Fatal("empty version response")
	}
}

// TestServerTimingNoReply: noreply stores produce no response and therefore
// no trailer; the following reply-bearing request must still frame.
func TestServerTimingNoReply(t *testing.T) {
	srv := timedServer(t, nil)
	c := dialRaw(t, srv.Addr())
	if resp := c.roundTrip(t, &protocol.Request{Op: protocol.OpTiming, TimingOn: true}); resp.Status != "TIMING_ON" {
		t.Fatalf("timing on: %q", resp.Status)
	}
	if err := protocol.WriteRequest(c.bw, &protocol.Request{Op: protocol.OpSet, Key: "nr", Value: []byte("x"), NoReply: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp := c.roundTrip(t, &protocol.Request{Op: protocol.OpGet, Key: "nr"})
	if !resp.Hit {
		t.Fatal("noreply set did not store")
	}
	st := c.trailer(t)
	// No probe attached: interference spans report zero rather than lying.
	if st.GCNs != 0 || st.SchedNs != 0 {
		t.Errorf("probe-less trailer has interference: %+v", st)
	}
}

// TestServerTimingPerConnIsolation: timing is per connection; a second,
// untimed connection must see trailer-free responses while the first one
// streams trailers.
func TestServerTimingPerConnIsolation(t *testing.T) {
	srv := timedServer(t, nil)
	timed := dialRaw(t, srv.Addr())
	plain := dialRaw(t, srv.Addr())
	if resp := timed.roundTrip(t, &protocol.Request{Op: protocol.OpTiming, TimingOn: true}); resp.Status != "TIMING_ON" {
		t.Fatalf("timing on: %q", resp.Status)
	}
	timed.roundTrip(t, &protocol.Request{Op: protocol.OpSet, Key: "a", Value: []byte("1")})
	timed.trailer(t)
	// The plain connection frames two consecutive responses with no trailer.
	plain.roundTrip(t, &protocol.Request{Op: protocol.OpSet, Key: "b", Value: []byte("2")})
	if resp := plain.roundTrip(t, &protocol.Request{Op: protocol.OpGet, Key: "b"}); !resp.Hit {
		t.Fatal("plain connection lost a response")
	}
}

// benchRoundTrips measures single-outstanding GET round trips against a
// loopback server and reports the client-observed mean as ns/op, so the
// timed and untimed paths compare directly:
//
//	go test -bench ServerTiming -benchtime 10000x ./internal/server
//
// BenchmarkServerTimingOff is the guard for the overhead satellite: the
// untimed path (timing never negotiated, probe attached but idle per
// request) must stay within noise (<1%) of the pre-trailer server, because
// it executes no timing code beyond one per-request bool check and skipped
// stamps.
func benchRoundTrips(b *testing.B, timing bool) {
	probe := rtprobe.NewSampler(rtprobe.Config{})
	probe.Start()
	defer probe.Stop()
	srv := timedServer(b, probe)
	c := dialRaw(b, srv.Addr())
	if resp := c.roundTrip(b, &protocol.Request{Op: protocol.OpSet, Key: "bench", Value: []byte("value")}); resp.Status != "STORED" {
		b.Fatalf("seed: %q", resp.Status)
	}
	if timing {
		if resp := c.roundTrip(b, &protocol.Request{Op: protocol.OpTiming, TimingOn: true}); resp.Status != "TIMING_ON" {
			b.Fatalf("timing on: %q", resp.Status)
		}
	}
	get := &protocol.Request{Op: protocol.OpGet, Key: "bench"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := c.roundTrip(b, get); !resp.Hit {
			b.Fatal("miss")
		}
		if timing {
			c.trailer(b)
		}
	}
}

func BenchmarkServerTimingOff(b *testing.B) { benchRoundTrips(b, false) }
func BenchmarkServerTimingOn(b *testing.B)  { benchRoundTrips(b, true) }
