package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"treadmill/internal/protocol"
)

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(0, 100); err == nil {
		t.Error("0 shards should error")
	}
	if _, err := NewStore(4, 0); err == nil {
		t.Error("0 capacity should error")
	}
}

func TestStoreSetGetDelete(t *testing.T) {
	st, err := NewStore(8, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get("missing"); ok {
		t.Error("missing key reported present")
	}
	if err := st.Set("k", 7, []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, flags, ok := st.Get("k")
	if !ok || string(v) != "value" || flags != 7 {
		t.Errorf("get = %q/%d/%v", v, flags, ok)
	}
	// Overwrite.
	if err := st.Set("k", 9, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, flags, _ = st.Get("k")
	if string(v) != "v2" || flags != 9 {
		t.Errorf("after overwrite: %q/%d", v, flags)
	}
	if !st.Delete("k") {
		t.Error("delete existing returned false")
	}
	if st.Delete("k") {
		t.Error("delete missing returned true")
	}
}

func TestStoreReturnsCopies(t *testing.T) {
	st, _ := NewStore(1, 1<<20)
	orig := []byte("abc")
	st.Set("k", 0, orig)
	orig[0] = 'X'
	v, _, _ := st.Get("k")
	if string(v) != "abc" {
		t.Error("Set aliased caller's slice")
	}
	v[0] = 'Y'
	v2, _, _ := st.Get("k")
	if string(v2) != "abc" {
		t.Error("Get returned internal slice")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	// Single shard, tiny capacity: inserting beyond capacity evicts the
	// least recently used.
	st, _ := NewStore(1, 64)
	for i := 0; i < 4; i++ {
		if err := st.Set(fmt.Sprintf("key%d", i), 0, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	// 4 items × 14 bytes = 56 <= 64; a 5th evicts key0.
	if err := st.Set("key4", 0, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get("key0"); ok {
		t.Error("LRU victim key0 still present")
	}
	if _, _, ok := st.Get("key4"); !ok {
		t.Error("newly inserted key4 missing")
	}
	if st.Stats().Evictions == 0 {
		t.Error("evictions not counted")
	}
}

func TestStoreLRUTouchOnGet(t *testing.T) {
	st, _ := NewStore(1, 64)
	for i := 0; i < 4; i++ {
		st.Set(fmt.Sprintf("key%d", i), 0, []byte("0123456789"))
	}
	// Touch key0 so key1 becomes the LRU victim.
	st.Get("key0")
	st.Set("key4", 0, []byte("0123456789"))
	if _, _, ok := st.Get("key0"); !ok {
		t.Error("recently read key0 was evicted")
	}
	if _, _, ok := st.Get("key1"); ok {
		t.Error("key1 should have been the LRU victim")
	}
}

func TestStoreOversizeItem(t *testing.T) {
	st, _ := NewStore(1, 32)
	if err := st.Set("k", 0, make([]byte, 100)); err == nil {
		t.Error("oversize item accepted")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st, _ := NewStore(16, 8<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%50)
				switch i % 3 {
				case 0:
					if err := st.Set(key, 0, []byte("v")); err != nil {
						t.Error(err)
						return
					}
				case 1:
					st.Get(key)
				default:
					st.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

// startServer returns a running server and a cleanup-registered client
// connection factory.
func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t *testing.T, srv *Server) (net.Conn, *bufio.Reader, *bufio.Writer) {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn), bufio.NewWriter(conn)
}

func TestServerEndToEnd(t *testing.T) {
	srv := startServer(t)
	_, r, w := dial(t, srv)

	// set
	if err := protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpSet, Key: "hello", Flags: 5, Value: []byte("world")}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	resp, err := protocol.ParseResponse(r, protocol.OpSet)
	if err != nil || resp.Status != "STORED" {
		t.Fatalf("set: %v %+v", err, resp)
	}
	// get hit
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpGet, Key: "hello"})
	w.Flush()
	resp, err = protocol.ParseResponse(r, protocol.OpGet)
	if err != nil || !resp.Hit || string(resp.Value) != "world" || resp.Flags != 5 {
		t.Fatalf("get: %v %+v", err, resp)
	}
	// get miss
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpGet, Key: "nope"})
	w.Flush()
	resp, err = protocol.ParseResponse(r, protocol.OpGet)
	if err != nil || resp.Hit {
		t.Fatalf("miss: %v %+v", err, resp)
	}
	// delete
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpDelete, Key: "hello"})
	w.Flush()
	resp, err = protocol.ParseResponse(r, protocol.OpDelete)
	if err != nil || resp.Status != "DELETED" {
		t.Fatalf("delete: %v %+v", err, resp)
	}
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpDelete, Key: "hello"})
	w.Flush()
	resp, err = protocol.ParseResponse(r, protocol.OpDelete)
	if err != nil || resp.Status != "NOT_FOUND" {
		t.Fatalf("delete missing: %v %+v", err, resp)
	}
	// version
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpVersion})
	w.Flush()
	resp, err = protocol.ParseResponse(r, protocol.OpVersion)
	if err != nil || !strings.HasPrefix(resp.Status, "VERSION ") {
		t.Fatalf("version: %v %+v", err, resp)
	}
	// stats
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpStats})
	w.Flush()
	resp, err = protocol.ParseResponse(r, protocol.OpStats)
	if err != nil || !strings.Contains(string(resp.Value), "cmd_get") {
		t.Fatalf("stats: %v %+v", err, resp)
	}
	if srv.Requests() < 6 {
		t.Errorf("requests = %d", srv.Requests())
	}
}

func TestServerPipelining(t *testing.T) {
	srv := startServer(t)
	_, r, w := dial(t, srv)
	const n = 50
	for i := 0; i < n; i++ {
		if err := protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpSet, Key: fmt.Sprintf("k%d", i), Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	for i := 0; i < n; i++ {
		resp, err := protocol.ParseResponse(r, protocol.OpSet)
		if err != nil || resp.Status != "STORED" {
			t.Fatalf("pipelined set %d: %v %+v", i, err, resp)
		}
	}
	for i := 0; i < n; i++ {
		protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpGet, Key: fmt.Sprintf("k%d", i)})
	}
	w.Flush()
	for i := 0; i < n; i++ {
		resp, err := protocol.ParseResponse(r, protocol.OpGet)
		if err != nil || !resp.Hit {
			t.Fatalf("pipelined get %d: %v %+v", i, err, resp)
		}
	}
}

func TestServerNoreply(t *testing.T) {
	srv := startServer(t)
	_, r, w := dial(t, srv)
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpSet, Key: "a", Value: []byte("1"), NoReply: true})
	// Follow immediately with a get; the only response must be the get's.
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpGet, Key: "a"})
	w.Flush()
	resp, err := protocol.ParseResponse(r, protocol.OpGet)
	if err != nil || !resp.Hit || string(resp.Value) != "1" {
		t.Fatalf("get after noreply set: %v %+v", err, resp)
	}
}

func TestServerMalformedCommand(t *testing.T) {
	srv := startServer(t)
	conn, r, _ := dial(t, srv)
	fmt.Fprintf(conn, "garbage command\r\n")
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "ERROR") {
		t.Fatalf("line = %q, err = %v", line, err)
	}
}

func TestServerConcurrentConnections(t *testing.T) {
	srv := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			w := bufio.NewWriter(conn)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpSet, Key: key, Value: []byte("x")})
				w.Flush()
				resp, err := protocol.ParseResponse(r, protocol.OpSet)
				if err != nil || resp.Status != "STORED" {
					errs <- fmt.Errorf("g%d i%d: %v %+v", g, i, err, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestServerAddrBeforeStart(t *testing.T) {
	srv, _ := New(DefaultConfig())
	if srv.Addr() != "" {
		t.Error("Addr before Start should be empty")
	}
}

// Property: the store behaves like a map for any set/get sequence that
// fits in capacity.
func TestStoreMapEquivalenceProperty(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val byte
		Del bool
	}) bool {
		st, err := NewStore(4, 1<<20)
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%16)
			if op.Del {
				got := st.Delete(key)
				_, want := model[key]
				delete(model, key)
				if got != want {
					return false
				}
			} else {
				val := []byte{op.Val}
				if err := st.Set(key, 0, val); err != nil {
					return false
				}
				model[key] = val
			}
		}
		for key, want := range model {
			got, _, ok := st.Get(key)
			if !ok || string(got) != string(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestServerMultiGet(t *testing.T) {
	srv := startServer(t)
	_, r, w := dial(t, srv)
	for _, k := range []string{"ma", "mc"} {
		protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpSet, Key: k, Value: []byte("v-" + k)})
	}
	w.Flush()
	for i := 0; i < 2; i++ {
		if resp, err := protocol.ParseResponse(r, protocol.OpSet); err != nil || resp.Status != "STORED" {
			t.Fatalf("set %d: %v %+v", i, err, resp)
		}
	}
	// Multi-get with one miss in the middle.
	protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpGet, Keys: []string{"ma", "mb", "mc"}})
	w.Flush()
	resp, err := protocol.ParseResponse(r, protocol.OpGet)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 2 {
		t.Fatalf("items = %+v", resp.Items)
	}
	if resp.Items[0].Key != "ma" || string(resp.Items[0].Value) != "v-ma" {
		t.Errorf("item 0 = %+v", resp.Items[0])
	}
	if resp.Items[1].Key != "mc" || string(resp.Items[1].Value) != "v-mc" {
		t.Errorf("item 1 = %+v", resp.Items[1])
	}
}
