package server

import (
	"fmt"
	"testing"
)

func BenchmarkStoreSet(b *testing.B) {
	st, err := NewStore(64, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
	}
	value := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Set(keys[i%len(keys)], 0, value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreGet(b *testing.B) {
	st, _ := NewStore(64, 1<<30)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
		st.Set(keys[i], 0, make([]byte, 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := st.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkStoreGetParallel(b *testing.B) {
	st, _ := NewStore(64, 1<<30)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
		st.Set(keys[i], 0, make([]byte, 256))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, ok := st.Get(keys[i%len(keys)]); !ok {
				b.Fatal("miss")
			}
			i++
		}
	})
}
