// Package server implements a memcached-compatible in-memory key-value
// server over TCP: a sharded LRU store behind the ASCII protocol. It is
// the real-network system under test for Treadmill's TCP mode — the role
// memcached plays in the paper's testbed.
package server

import (
	"container/list"
	"fmt"
	"sync"
)

// item is one stored entry.
type item struct {
	key   string
	flags uint32
	value []byte
	elem  *list.Element
}

// shard is one lock-striped partition of the store with its own LRU list.
type shard struct {
	mu    sync.Mutex
	items map[string]*item
	lru   *list.List // front = most recent
	bytes int64
	cap   int64
	stats statCounters
}

// Store is a sharded LRU key-value store. Sharding keeps lock hold times
// short under the high request concurrency a load test produces.
type Store struct {
	shards []*shard
	mask   uint64

	// counters are per-shard to avoid a shared hot cacheline; aggregated
	// on demand by Stats.
}

// StoreStats is a point-in-time aggregate over shards.
type StoreStats struct {
	Items     int64
	Bytes     int64
	Gets      int64
	Hits      int64
	Sets      int64
	Deletes   int64
	Evictions int64
}

// statCounters lives inside shard to keep updates uncontended.
type statCounters struct {
	gets, hits, sets, deletes, evictions int64
}

// NewStore builds a store with the given shard count (rounded up to a
// power of two) and a per-shard byte capacity derived from totalBytes.
func NewStore(shardCount int, totalBytes int64) (*Store, error) {
	if shardCount < 1 {
		return nil, fmt.Errorf("server: shard count %d must be >= 1", shardCount)
	}
	if totalBytes < 1 {
		return nil, fmt.Errorf("server: capacity %d must be >= 1 byte", totalBytes)
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	s := &Store{shards: make([]*shard, n), mask: uint64(n - 1)}
	per := totalBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range s.shards {
		s.shards[i] = &shard{items: make(map[string]*item), lru: list.New(), cap: per}
	}
	return s, nil
}

// fnv1a hashes the key for shard selection.
func fnv1a(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

func (s *Store) shardFor(key string) *shard {
	return s.shards[fnv1a(key)&s.mask]
}

// Get returns the value and flags for key. The returned slice is a copy;
// callers may retain it.
func (s *Store) Get(key string) (value []byte, flags uint32, ok bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.gets++
	it, found := sh.items[key]
	if !found {
		return nil, 0, false
	}
	sh.stats.hits++
	sh.lru.MoveToFront(it.elem)
	cp := make([]byte, len(it.value))
	copy(cp, it.value)
	return cp, it.flags, true
}

// Set stores value under key, evicting LRU entries if needed. The value is
// copied.
func (s *Store) Set(key string, flags uint32, value []byte) error {
	sh := s.shardFor(key)
	size := int64(len(key) + len(value))
	if size > sh.cap {
		return fmt.Errorf("server: item of %d bytes exceeds shard capacity %d", size, sh.cap)
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.sets++
	if it, ok := sh.items[key]; ok {
		sh.bytes += int64(len(cp)) - int64(len(it.value))
		it.value = cp
		it.flags = flags
		sh.lru.MoveToFront(it.elem)
	} else {
		it := &item{key: key, flags: flags, value: cp}
		it.elem = sh.lru.PushFront(it)
		sh.items[key] = it
		sh.bytes += size
	}
	for sh.bytes > sh.cap {
		oldest := sh.lru.Back()
		if oldest == nil {
			break
		}
		victim := oldest.Value.(*item)
		sh.lru.Remove(oldest)
		delete(sh.items, victim.key)
		sh.bytes -= int64(len(victim.key) + len(victim.value))
		sh.stats.evictions++
	}
	return nil
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.deletes++
	it, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.lru.Remove(it.elem)
	delete(sh.items, key)
	sh.bytes -= int64(len(it.key) + len(it.value))
	return true
}

// Stats aggregates per-shard statistics.
func (s *Store) Stats() StoreStats {
	var out StoreStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		out.Items += int64(len(sh.items))
		out.Bytes += sh.bytes
		out.Gets += sh.stats.gets
		out.Hits += sh.stats.hits
		out.Sets += sh.stats.sets
		out.Deletes += sh.stats.deletes
		out.Evictions += sh.stats.evictions
		sh.mu.Unlock()
	}
	return out
}

// Len returns the total number of stored items.
func (s *Store) Len() int { return int(s.Stats().Items) }
