package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"treadmill/internal/infersim"
	"treadmill/internal/protocol"
	"treadmill/internal/rtprobe"
	"treadmill/internal/telemetry"
)

// Version is reported to the protocol's version command.
const Version = "treadmill-kv/1.0"

// Config controls the TCP server.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// Shards and CapacityBytes size the store.
	Shards        int
	CapacityBytes int64
	// ReadBufferSize / WriteBufferSize size per-connection bufio buffers.
	ReadBufferSize, WriteBufferSize int
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
	// Telemetry, when non-nil, receives server metrics
	// (server.connections, server.active_conns, server.requests).
	Telemetry *telemetry.Registry
	// Probe, when non-nil, attributes GC-pause and scheduler-wait time to
	// each request's residence window in the server-timing trailer (see
	// protocol.OpTiming). The server does not own the sampler's lifecycle;
	// the caller starts and stops it. A nil probe reports zero GC/sched in
	// trailers, which remain otherwise functional.
	Probe *rtprobe.Sampler
	// Inference, when non-nil, enables the infer op: requests run through
	// a wall-clock iteration batcher with these cost/batching parameters
	// and answer with an INFER span report (see protocol.OpInfer). Nil
	// servers answer infer with ERROR.
	Inference *infersim.Config
	// FlushDelay, when positive, makes the server wait this long before
	// flushing a response when no further pipelined request is buffered —
	// a server-side batching knob: it coalesces responses that arrive
	// within the window at the cost of per-response latency. On the timed
	// path the wait lands between serialize and flush, so the cost is
	// measured in the trailer's WriteNs and attributed to srv_write.
	FlushDelay time.Duration
}

// DefaultConfig returns a production-shaped configuration listening on an
// ephemeral localhost port.
func DefaultConfig() Config {
	return Config{
		Addr:            "127.0.0.1:0",
		Shards:          64,
		CapacityBytes:   256 << 20,
		ReadBufferSize:  16 << 10,
		WriteBufferSize: 16 << 10,
	}
}

// Server is the TCP memcached-compatible server. Each connection is owned
// by one goroutine, reading pipelined requests and writing responses in
// order — the same threading structure memcached's worker model presents
// to a single connection.
type Server struct {
	cfg   Config
	store *Store

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	requests atomic.Uint64

	infer *infersim.Batcher

	connsC  *telemetry.Counter
	activeG *telemetry.Gauge
	reqsC   *telemetry.Counter
	shedC   *telemetry.Counter
}

// New creates a Server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 64
	}
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = 256 << 20
	}
	if cfg.ReadBufferSize == 0 {
		cfg.ReadBufferSize = 16 << 10
	}
	if cfg.WriteBufferSize == 0 {
		cfg.WriteBufferSize = 16 << 10
	}
	st, err := NewStore(cfg.Shards, cfg.CapacityBytes)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, store: st, conns: make(map[net.Conn]struct{})}
	if cfg.Inference != nil {
		s.infer, err = infersim.NewBatcher(*cfg.Inference, infersim.NewRealClock())
		if err != nil {
			return nil, err
		}
	}
	if cfg.FlushDelay < 0 {
		return nil, fmt.Errorf("server: FlushDelay %v invalid: want >= 0", cfg.FlushDelay)
	}
	if reg := cfg.Telemetry; reg != nil {
		s.connsC = reg.Counter("server.connections")
		s.activeG = reg.Gauge("server.active_conns")
		s.reqsC = reg.Counter("server.requests")
		s.shedC = reg.Counter("server.infer_shed")
	}
	return s, nil
}

// InferBatcher exposes the inference batcher (nil when not configured).
func (s *Server) InferBatcher() *infersim.Batcher { return s.infer }

// Store exposes the underlying store (examples preload data through it).
func (s *Server) Store() *Store { return s.store }

// Requests returns the number of requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Addr returns the bound listen address; empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Start begins listening and serving in background goroutines. Use Close
// to stop. The returned error covers listen failures only; per-connection
// errors go to the configured logger.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			// Latency measurement demands immediate segments.
			_ = tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	s.connsC.Inc()
	s.activeG.Add(1)
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.activeG.Add(-1)
	}()
	sc := &stampConn{Conn: conn}
	r := bufio.NewReaderSize(sc, s.cfg.ReadBufferSize)
	w := bufio.NewWriterSize(conn, s.cfg.WriteBufferSize)
	timed := false
	for {
		var markNs int64
		if timed {
			// Arrival stamp: wall time of the first read that delivered this
			// request's bytes, or — when the request was already buffered
			// behind a pipelined batch — the instant the server turned to it.
			sc.mark()
			markNs = time.Now().UnixNano()
		}
		req, err := protocol.ParseRequest(r)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && s.cfg.Logger != nil {
				s.cfg.Logger.Printf("conn %s: %v", conn.RemoteAddr(), err)
			}
			if errors.Is(err, protocol.ErrProtocol) {
				_ = protocol.WriteStatusResponse(w, "ERROR")
				_ = w.Flush()
			}
			return
		}
		s.requests.Add(1)
		s.reqsC.Inc()
		if req.Op == protocol.OpTiming {
			// The toggle's own response never carries a trailer; trailers
			// start with the next response once timing is on.
			timed = req.TimingOn
			status := "TIMING_OFF"
			if timed {
				status = "TIMING_ON"
			}
			if err := protocol.WriteStatusResponse(w, status); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			continue
		}
		if !timed {
			if err := s.handle(w, req, nil); err != nil {
				if s.cfg.Logger != nil {
					s.cfg.Logger.Printf("conn %s write: %v", conn.RemoteAddr(), err)
				}
				return
			}
			// Flush when no further pipelined request is buffered, batching
			// responses under pipelining without adding latency otherwise.
			if r.Buffered() == 0 {
				s.flushDelay()
				if err := w.Flush(); err != nil {
					return
				}
			}
			continue
		}
		// Timed path: stamp each stage boundary, flush the response to
		// measure the write span, then append and flush the trailer. The
		// pipelining flush batch is deliberately given up here — the trailer
		// must reach the client right behind its response, and the measured
		// WriteNs should cover a real syscall, not a buffer append.
		var tm reqTiming
		tm.arrivalNs = sc.firstReadNs
		if tm.arrivalNs == 0 {
			tm.arrivalNs = markNs
		}
		tm.parsedNs = time.Now().UnixNano()
		if err := s.handle(w, req, &tm); err != nil {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("conn %s write: %v", conn.RemoteAddr(), err)
			}
			return
		}
		tm.serializedNs = time.Now().UnixNano()
		if r.Buffered() == 0 {
			// The batching wait sits between the serialize stamp and the
			// flush stamp, so the trailer prices it as WriteNs (srv_write).
			s.flushDelay()
		}
		if err := w.Flush(); err != nil {
			return
		}
		flushedNs := time.Now().UnixNano()
		if req.NoReply {
			continue // no response on the wire, so no trailer either
		}
		gcSec, schedSec := s.cfg.Probe.Attribute(tm.arrivalNs, flushedNs)
		st := protocol.ServerTiming{
			ParseNs:     clampNs(tm.parsedNs - tm.arrivalNs),
			StoreNs:     clampNs(tm.storedNs - tm.parsedNs),
			SerializeNs: clampNs(tm.serializedNs - tm.storedNs),
			WriteNs:     clampNs(flushedNs - tm.serializedNs),
			GCNs:        clampNs(int64(gcSec * 1e9)),
			SchedNs:     clampNs(int64(schedSec * 1e9)),
		}
		if err := protocol.WriteServerTiming(w, &st); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// flushDelay applies the server-side batching knob before a flush.
func (s *Server) flushDelay() {
	if d := s.cfg.FlushDelay; d > 0 {
		time.Sleep(d)
	}
}

// reqTiming holds the per-request stage-boundary stamps of the timed path,
// all UnixNano: arrival (first request byte), parse done, store op done,
// response serialized into the buffer. The flush stamp is taken inline.
type reqTiming struct {
	arrivalNs, parsedNs, storedNs, serializedNs int64
}

func clampNs(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// stampConn wraps the accepted connection to record the wall-clock instant
// of the first Read that returns data after each mark — the closest
// observable proxy for "request bytes arrived" without kernel timestamping.
// Reads happen only on the connection goroutine, so plain fields suffice.
type stampConn struct {
	net.Conn
	firstReadNs int64
}

func (c *stampConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.firstReadNs == 0 {
		c.firstReadNs = time.Now().UnixNano()
	}
	return n, err
}

func (c *stampConn) mark() { c.firstReadNs = 0 }

// handle executes req against the store and serializes the response into w.
// When tm is non-nil (timed path) the store/serialize boundary is stamped
// into tm.storedNs; the parse and flush boundaries are stamped by the
// caller, which owns the surrounding I/O.
func (s *Server) handle(w *bufio.Writer, req *protocol.Request, tm *reqTiming) error {
	switch req.Op {
	case protocol.OpGet:
		keys := req.AllKeys()
		if len(keys) == 1 {
			value, flags, ok := s.store.Get(keys[0])
			tm.stampStored()
			return protocol.WriteGetResponse(w, keys[0], flags, value, ok)
		}
		var items []protocol.Item
		for _, key := range keys {
			if value, flags, ok := s.store.Get(key); ok {
				items = append(items, protocol.Item{Key: key, Flags: flags, Value: value})
			}
		}
		tm.stampStored()
		return protocol.WriteItemsResponse(w, items)
	case protocol.OpSet:
		err := s.store.Set(req.Key, req.Flags, req.Value)
		tm.stampStored()
		if req.NoReply {
			return nil
		}
		if err != nil {
			return protocol.WriteStatusResponse(w, "SERVER_ERROR object too large for cache")
		}
		return protocol.WriteStatusResponse(w, "STORED")
	case protocol.OpDelete:
		ok := s.store.Delete(req.Key)
		tm.stampStored()
		if req.NoReply {
			return nil
		}
		if ok {
			return protocol.WriteStatusResponse(w, "DELETED")
		}
		return protocol.WriteStatusResponse(w, "NOT_FOUND")
	case protocol.OpVersion:
		tm.stampStored()
		return protocol.WriteStatusResponse(w, "VERSION "+Version)
	case protocol.OpInfer:
		if s.infer == nil {
			tm.stampStored()
			return protocol.WriteStatusResponse(w, "ERROR")
		}
		// The connection goroutine blocks until the batcher completes the
		// request — inference responses are inherently unpipelined from
		// this connection's perspective, exactly like the modeled service.
		done := make(chan infersim.Report, 1)
		if err := s.infer.Submit(req.InTokens, req.OutTokens, func(rep infersim.Report) { done <- rep }); err != nil {
			s.shedC.Inc()
			tm.stampStored()
			return protocol.WriteStatusResponse(w, "BUSY")
		}
		rep := <-done
		tm.stampStored()
		it := protocol.InferTiming{
			OutTokens: rep.OutTokens,
			QueueNs:   clampNs(int64(rep.QueueWait * 1e9)),
			PrefillNs: clampNs(int64(rep.Prefill * 1e9)),
			DecodeNs:  clampNs(int64(rep.Decode * 1e9)),
			BatchNs:   clampNs(int64(rep.BatchExtra * 1e9)),
		}
		return protocol.WriteStatusResponse(w, protocol.FormatInferStatus(&it))
	case protocol.OpStats:
		st := s.store.Stats()
		tm.stampStored()
		for _, line := range []string{
			fmt.Sprintf("STAT curr_items %d", st.Items),
			fmt.Sprintf("STAT bytes %d", st.Bytes),
			fmt.Sprintf("STAT cmd_get %d", st.Gets),
			fmt.Sprintf("STAT get_hits %d", st.Hits),
			fmt.Sprintf("STAT cmd_set %d", st.Sets),
			fmt.Sprintf("STAT evictions %d", st.Evictions),
		} {
			if err := protocol.WriteStatusResponse(w, line); err != nil {
				return err
			}
		}
		return protocol.WriteStatusResponse(w, "END")
	default:
		tm.stampStored()
		return protocol.WriteStatusResponse(w, "ERROR")
	}
}

// stampStored records the execute→serialize boundary; a nil receiver (the
// untimed fast path) is a no-op, keeping one handle implementation for both.
func (tm *reqTiming) stampStored() {
	if tm != nil {
		tm.storedNs = time.Now().UnixNano()
	}
}

// Close stops listening, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Serve runs the server until ctx is cancelled (convenience for cmd/).
func (s *Server) Serve(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	return s.Close()
}
