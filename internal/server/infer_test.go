package server

import (
	"sync"
	"testing"
	"time"

	"treadmill/internal/infersim"
	"treadmill/internal/protocol"
)

// inferConfig returns a server config with a fast inference model so tests
// complete in milliseconds of wall clock.
func inferConfig() Config {
	cfg := DefaultConfig()
	cfg.Inference = &infersim.Config{
		PrefillTokenCost: 50e-9,
		DecodeTokenCost:  100e-9,
		IterOverhead:     1e-6,
		MaxBatch:         4,
		QueueCap:         64,
	}
	return cfg
}

func TestServerInfer(t *testing.T) {
	srv, err := New(inferConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	_, r, w := dial(t, srv)

	for i := 0; i < 8; i++ {
		if err := protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpInfer, InTokens: 128, OutTokens: 16}); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		resp, err := protocol.ParseResponse(r, protocol.OpInfer)
		if err != nil {
			t.Fatal(err)
		}
		it, err := protocol.ParseInferStatus(resp.Status)
		if err != nil {
			t.Fatalf("infer %d: %v (status %q)", i, err, resp.Status)
		}
		if it.OutTokens != 16 {
			t.Fatalf("infer %d: out tokens = %d, want 16", i, it.OutTokens)
		}
		if it.PrefillNs <= 0 || it.DecodeNs <= 0 {
			t.Fatalf("infer %d: non-positive compute spans: %+v", i, it)
		}
		if it.QueueNs < 0 || it.BatchNs < 0 {
			t.Fatalf("infer %d: negative wait spans: %+v", i, it)
		}
		if it.ResidenceNs() <= 0 {
			t.Fatalf("infer %d: residence %d not positive", i, it.ResidenceNs())
		}
	}
	if got := srv.InferBatcher().Completed(); got != 8 {
		t.Fatalf("batcher completed = %d, want 8", got)
	}
}

// TestServerInferConcurrent drives parallel connections so several requests
// share batcher iterations, and checks every report still parses and tiles.
func TestServerInferConcurrent(t *testing.T) {
	srv, err := New(inferConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	const conns, per = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, r, w := dial(t, srv)
			for i := 0; i < per; i++ {
				if err := protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpInfer, InTokens: 64, OutTokens: 8}); err != nil {
					errs <- err
					return
				}
				w.Flush()
				resp, err := protocol.ParseResponse(r, protocol.OpInfer)
				if err != nil {
					errs <- err
					return
				}
				if _, err := protocol.ParseInferStatus(resp.Status); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.InferBatcher().Completed(); got != conns*per {
		t.Fatalf("batcher completed = %d, want %d", got, conns*per)
	}
}

func TestServerInferUnconfigured(t *testing.T) {
	srv := startServer(t)
	_, r, w := dial(t, srv)
	if err := protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpInfer, InTokens: 10, OutTokens: 10}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	resp, err := protocol.ParseResponse(r, protocol.OpInfer)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ERROR" {
		t.Fatalf("status = %q, want ERROR", resp.Status)
	}
}

// TestServerFlushDelayServes checks the batching knob stays functionally
// transparent: responses are merely delayed, never lost or reordered.
func TestServerFlushDelayServes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlushDelay = 200 * time.Microsecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	_, r, w := dial(t, srv)

	if err := protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpSet, Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	resp, err := protocol.ParseResponse(r, protocol.OpSet)
	if err != nil || resp.Status != "STORED" {
		t.Fatalf("set: %v %+v", err, resp)
	}
	// Pipelined gets exercise the "only delay when idle" branch: a full read
	// buffer must flush immediately.
	for i := 0; i < 4; i++ {
		protocol.WriteRequest(w, &protocol.Request{Op: protocol.OpGet, Key: "k"})
	}
	w.Flush()
	for i := 0; i < 4; i++ {
		resp, err := protocol.ParseResponse(r, protocol.OpGet)
		if err != nil || !resp.Hit || string(resp.Value) != "v" {
			t.Fatalf("get %d: %v %+v", i, err, resp)
		}
	}
}

func TestServerRejectsNegativeFlushDelay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlushDelay = -time.Microsecond
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for negative FlushDelay")
	}
}
