package hist

import (
	"math"
	"testing"
	"testing/quick"

	"treadmill/internal/dist"
)

func mustNew(t *testing.T, cfg Config) *Histogram {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func smallCfg() Config {
	return Config{WarmupSamples: 10, CalibrationSamples: 100, Bins: 1024, OverflowRebinFraction: 0.001}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{WarmupSamples: -1, CalibrationSamples: 10, Bins: 10, OverflowRebinFraction: 0.01},
		{WarmupSamples: 0, CalibrationSamples: 0, Bins: 10, OverflowRebinFraction: 0.01},
		{WarmupSamples: 0, CalibrationSamples: 10, Bins: 1, OverflowRebinFraction: 0.01},
		{WarmupSamples: 0, CalibrationSamples: 10, Bins: 10, OverflowRebinFraction: 0},
		{WarmupSamples: 0, CalibrationSamples: 10, Bins: 10, OverflowRebinFraction: 1},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPhaseTransitions(t *testing.T) {
	h := mustNew(t, smallCfg())
	if h.Phase() != Warmup {
		t.Fatalf("initial phase = %s, want warmup", h.Phase())
	}
	for i := 0; i < 10; i++ {
		if err := h.Record(1e-4); err != nil {
			t.Fatal(err)
		}
	}
	if h.Phase() != Calibration {
		t.Fatalf("after warmup phase = %s, want calibration", h.Phase())
	}
	for i := 0; i < 100; i++ {
		if err := h.Record(1e-4 + float64(i)*1e-6); err != nil {
			t.Fatal(err)
		}
	}
	if h.Phase() != Measurement {
		t.Fatalf("after calibration phase = %s, want measurement", h.Phase())
	}
	// Calibration samples are retained as measurements.
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100 (calibration samples kept)", h.Count())
	}
}

func TestZeroWarmupSkipsPhase(t *testing.T) {
	cfg := smallCfg()
	cfg.WarmupSamples = 0
	h := mustNew(t, cfg)
	if h.Phase() != Calibration {
		t.Fatalf("phase = %s, want calibration when WarmupSamples=0", h.Phase())
	}
}

func TestWarmupSamplesDiscarded(t *testing.T) {
	h := mustNew(t, smallCfg())
	// Record absurd warm-up values; they must not affect stats.
	for i := 0; i < 10; i++ {
		if err := h.Record(1e6); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := h.Record(1e-4); err != nil {
			t.Fatal(err)
		}
	}
	if h.Max() > 1e-3 {
		t.Fatalf("warm-up sample leaked into measurement: max=%g", h.Max())
	}
}

func TestInvalidSamplesRejected(t *testing.T) {
	h := mustNew(t, smallCfg())
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := h.Record(v); err == nil {
			t.Errorf("Record(%g) accepted", v)
		}
	}
}

// fill drives h through warmup+calibration with samples from sample().
func fill(t *testing.T, h *Histogram, n int, sample func(i int) float64) []float64 {
	t.Helper()
	var measured []float64
	warm := h.cfg.WarmupSamples
	for i := 0; i < n; i++ {
		v := sample(i)
		if err := h.Record(v); err != nil {
			t.Fatal(err)
		}
		if i >= warm {
			measured = append(measured, v)
		}
	}
	return measured
}

func TestQuantileAccuracyLognormal(t *testing.T) {
	h := mustNew(t, smallCfg())
	rng := dist.NewRNG(42)
	l := dist.LognormalFromMoments(100e-6, 1.0)
	measured := fill(t, h, 100000, func(int) float64 { return l.Sample(rng) })

	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExactQuantile(measured, q)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Errorf("q=%g: hist=%g exact=%g rel err %.3f", q, got, want, rel)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := mustNew(t, smallCfg())
	if _, err := h.Quantile(0.5); err == nil {
		t.Error("quantile of empty histogram should error")
	}
	fill(t, h, 1000, func(i int) float64 { return 1e-4 * (1 + float64(i%100)/100) })
	if _, err := h.Quantile(-0.1); err == nil {
		t.Error("q=-0.1 should error")
	}
	if _, err := h.Quantile(1.1); err == nil {
		t.Error("q=1.1 should error")
	}
	q0, err := h.Quantile(0)
	if err != nil || q0 != h.Min() {
		t.Errorf("q=0 should return min: got %g, %v (min %g)", q0, err, h.Min())
	}
	q1, err := h.Quantile(1)
	if err != nil || q1 != h.Max() {
		t.Errorf("q=1 should return max: got %g, %v (max %g)", q1, err, h.Max())
	}
}

func TestQuantilesBatch(t *testing.T) {
	h := mustNew(t, smallCfg())
	fill(t, h, 5000, func(i int) float64 { return 1e-4 + float64(i%50)*1e-6 })
	qs, err := h.Quantiles(0.5, 0.9, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 || qs[0] > qs[1] || qs[1] > qs[2] {
		t.Errorf("quantiles not monotone: %v", qs)
	}
	if _, err := h.Quantiles(0.5, 2); err == nil {
		t.Error("invalid quantile in batch should error")
	}
}

func TestAdaptiveRebinOnGrowingLatency(t *testing.T) {
	// Simulate warm-up at low latency then a regime where latency grows
	// far beyond the calibration range, as at high utilization before
	// steady state. The adaptive histogram must follow.
	h := mustNew(t, smallCfg())
	rng := dist.NewRNG(7)
	var measured []float64
	i := 0
	rec := func(v float64) {
		if err := h.Record(v); err != nil {
			t.Fatal(err)
		}
		if i >= h.cfg.WarmupSamples {
			measured = append(measured, v)
		}
		i++
	}
	for j := 0; j < 200; j++ {
		rec(100e-6 * (0.9 + 0.2*rng.Float64()))
	}
	// Latency ramps up 100x beyond the calibrated bounds.
	for j := 0; j < 50000; j++ {
		scale := 1 + float64(j)/500
		rec(100e-6 * scale * (0.9 + 0.2*rng.Float64()))
	}
	if h.Rebins() == 0 {
		t.Fatal("expected at least one re-bin event")
	}
	got, err := h.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ExactQuantile(measured, 0.99)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("post-rebin p99 = %g, exact %g, rel err %.3f", got, want, rel)
	}
}

func TestStaticHistogramTruncatesTail(t *testing.T) {
	// The same growing-latency scenario breaks the static design.
	st, err := NewStatic(0, 1e-3, 1024) // static bound: 1ms
	if err != nil {
		t.Fatal(err)
	}
	var raw []float64
	rng := dist.NewRNG(7)
	for j := 0; j < 50000; j++ {
		v := 100e-6 * (1 + float64(j)/500) * (0.9 + 0.2*rng.Float64())
		st.Record(v)
		raw = append(raw, v)
	}
	got, err := st.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ExactQuantile(raw, 0.99)
	if got >= want*0.5 {
		t.Errorf("static histogram should badly underestimate p99: got %g, exact %g", got, want)
	}
	if st.TruncatedFraction() == 0 {
		t.Error("expected truncated samples to be reported")
	}
}

func TestStaticHistogramValidation(t *testing.T) {
	if _, err := NewStatic(1, 0, 10); err == nil {
		t.Error("hi<=lo accepted")
	}
	if _, err := NewStatic(0, 1, 1); err == nil {
		t.Error("bins<2 accepted")
	}
	if _, err := NewStatic(-1, 1, 10); err == nil {
		t.Error("negative lo accepted")
	}
}

func TestStaticQuantileEmpty(t *testing.T) {
	st, _ := NewStatic(0, 1, 16)
	if _, err := st.Quantile(0.5); err == nil {
		t.Error("empty static quantile should error")
	}
	if _, err := st.Quantile(2); err == nil {
		t.Error("q=2 should error")
	}
}

func TestMergePreservesQuantiles(t *testing.T) {
	cfg := smallCfg()
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	rng := dist.NewRNG(3)
	l := dist.LognormalFromMoments(200e-6, 0.8)
	ma := fill(t, a, 30000, func(int) float64 { return l.Sample(rng) })
	mb := fill(t, b, 30000, func(int) float64 { return l.Sample(rng) * 1.5 })
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	all := append(ma, mb...)
	if a.Count() != uint64(len(all)) {
		t.Fatalf("merged count = %d, want %d", a.Count(), len(all))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got, err := a.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ExactQuantile(all, q)
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Errorf("merged q=%g: got %g want %g rel %.3f", q, got, want, rel)
		}
	}
}

func TestMergeRequiresMeasurementPhase(t *testing.T) {
	a := mustNew(t, smallCfg())
	b := mustNew(t, smallCfg())
	if err := a.MergeFrom(b); err == nil {
		t.Error("merge of non-measurement histograms should error")
	}
}

func TestForceMeasurement(t *testing.T) {
	h := mustNew(t, smallCfg())
	h.ForceMeasurement()
	if h.Phase() != Measurement {
		t.Fatalf("phase = %s after ForceMeasurement", h.Phase())
	}
	if err := h.Record(5e-5); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}

	// With partial calibration data.
	h2 := mustNew(t, Config{WarmupSamples: 0, CalibrationSamples: 1000, Bins: 64, OverflowRebinFraction: 0.01})
	for i := 0; i < 10; i++ {
		if err := h2.Record(1e-4); err != nil {
			t.Fatal(err)
		}
	}
	h2.ForceMeasurement()
	if h2.Phase() != Measurement || h2.Count() != 10 {
		t.Fatalf("phase=%s count=%d, want measurement/10", h2.Phase(), h2.Count())
	}
}

func TestMeanMinMax(t *testing.T) {
	h := mustNew(t, Config{WarmupSamples: 0, CalibrationSamples: 3, Bins: 64, OverflowRebinFraction: 0.01})
	for _, v := range []float64{1e-4, 2e-4, 3e-4} {
		if err := h.Record(v); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(h.Mean()-2e-4) > 1e-10 {
		t.Errorf("mean = %g, want 2e-4", h.Mean())
	}
	if h.Min() != 1e-4 || h.Max() != 3e-4 {
		t.Errorf("min/max = %g/%g, want 1e-4/3e-4", h.Min(), h.Max())
	}
	empty := mustNew(t, smallCfg())
	if empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Error("empty histogram stats should be 0")
	}
}

func TestCDFMonotone(t *testing.T) {
	h := mustNew(t, smallCfg())
	rng := dist.NewRNG(21)
	e := dist.Exponential{Rate: 1e4}
	fill(t, h, 20000, func(int) float64 { return e.Sample(rng) + 1e-5 })
	vals, probs := h.CDF()
	if len(vals) == 0 || len(vals) != len(probs) {
		t.Fatalf("bad CDF shape: %d vals, %d probs", len(vals), len(probs))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] || probs[i] < probs[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if probs[len(probs)-1] < 0.9999 {
		t.Errorf("CDF should end at ~1, got %g", probs[len(probs)-1])
	}
	he := mustNew(t, smallCfg())
	if v, p := he.CDF(); v != nil || p != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestExactQuantile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if _, err := ExactQuantile(nil, 0.5); err == nil {
		t.Error("empty should error")
	}
	if _, err := ExactQuantile(vals, 1.5); err == nil {
		t.Error("q>1 should error")
	}
	got, err := ExactQuantile(vals, 0.5)
	if err != nil || got != 2.5 {
		t.Errorf("median = %g, want 2.5", got)
	}
	if got, _ := ExactQuantile(vals, 0); got != 1 {
		t.Errorf("q0 = %g, want 1", got)
	}
	if got, _ := ExactQuantile(vals, 1); got != 4 {
		t.Errorf("q1 = %g, want 4", got)
	}
	if got, _ := ExactQuantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("single value quantile = %g, want 7", got)
	}
	// Input must not be reordered.
	if vals[0] != 4 {
		t.Error("ExactQuantile mutated its input")
	}
}

// Property: histogram quantiles are monotone in q and bounded by [min,max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		h, err := New(Config{WarmupSamples: 0, CalibrationSamples: 50, Bins: 256, OverflowRebinFraction: 0.01})
		if err != nil {
			return false
		}
		rng := dist.NewRNG(seed)
		l := dist.LognormalFromMoments(1e-4, 2.0)
		for i := 0; i < 2000; i++ {
			if err := h.Record(l.Sample(rng)); err != nil {
				return false
			}
		}
		prev := 0.0
		for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99} {
			v, err := h.Quantile(q)
			if err != nil || v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Count equals the number of post-warm-up records, regardless of
// re-binning.
func TestCountInvariantProperty(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%3000) + 200
		h, err := New(Config{WarmupSamples: 50, CalibrationSamples: 100, Bins: 128, OverflowRebinFraction: 0.001})
		if err != nil {
			return false
		}
		rng := dist.NewRNG(seed)
		p := dist.Pareto{Xm: 1e-5, Alpha: 1.2} // heavy tail forces rebins
		for i := 0; i < n; i++ {
			if err := h.Record(p.Sample(rng)); err != nil {
				return false
			}
		}
		want := uint64(0)
		if n > 50 {
			want = uint64(n - 50)
		}
		return h.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPhaseString(t *testing.T) {
	if Warmup.String() != "warmup" || Calibration.String() != "calibration" || Measurement.String() != "measurement" {
		t.Error("phase names wrong")
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase should still render")
	}
}
