package hist

import (
	"encoding/json"
	"math"
	"testing"

	"treadmill/internal/dist"
)

func filledHistogram(t *testing.T, seed uint64, n int) (*Histogram, []float64) {
	t.Helper()
	h := mustNew(t, Config{WarmupSamples: 0, CalibrationSamples: 500, Bins: 1024, OverflowRebinFraction: 0.001})
	rng := dist.NewRNG(seed)
	l := dist.LognormalFromMoments(150e-6, 0.8)
	var vals []float64
	for i := 0; i < n; i++ {
		v := l.Sample(rng)
		if err := h.Record(v); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	return h, vals
}

func TestSnapshotRoundTrip(t *testing.T) {
	h, vals := filledHistogram(t, 1, 30000)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSnapshot(data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() {
		t.Fatalf("count %d vs %d", back.Count(), h.Count())
	}
	if math.Abs(back.Mean()-h.Mean()) > 1e-12 {
		t.Errorf("mean %g vs %g", back.Mean(), h.Mean())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		a, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b)/a > 1e-9 {
			t.Errorf("q=%g: %g vs %g", q, a, b)
		}
	}
	_ = vals
}

func TestSnapshotRequiresMeasurementPhase(t *testing.T) {
	h := mustNew(t, smallCfg())
	if _, err := h.Snapshot(); err == nil {
		t.Error("warm-up-phase snapshot should error")
	}
	if _, err := json.Marshal(h); err == nil {
		t.Error("marshal of warm-up-phase histogram should error")
	}
}

func TestSnapshotCrossMachineMerge(t *testing.T) {
	// Two "machines" snapshot their histograms; the coordinator rebuilds
	// and merges them. The merged quantiles must match merging the live
	// histograms directly.
	h1, v1 := filledHistogram(t, 2, 20000)
	h2, v2 := filledHistogram(t, 3, 20000)

	d1, err := json.Marshal(h1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(h2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := UnmarshalSnapshot(d1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := UnmarshalSnapshot(d2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.MergeFrom(r2); err != nil {
		t.Fatal(err)
	}
	all := append(append([]float64(nil), v1...), v2...)
	for _, q := range []float64{0.5, 0.99} {
		got, err := r1.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ExactQuantile(all, q)
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Errorf("merged-from-snapshots q=%g: got %g want %g (rel %.3f)", q, got, want, rel)
		}
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	if _, err := FromSnapshot(nil, DefaultConfig()); err == nil {
		t.Error("nil snapshot should error")
	}
	if _, err := FromSnapshot(&Snapshot{Lo: 0, Hi: 1, Counts: make([]uint64, 4)}, DefaultConfig()); err == nil {
		t.Error("lo=0 should error")
	}
	if _, err := FromSnapshot(&Snapshot{Lo: 1, Hi: 1, Counts: make([]uint64, 4)}, DefaultConfig()); err == nil {
		t.Error("hi<=lo should error")
	}
	if _, err := FromSnapshot(&Snapshot{Lo: 1, Hi: 2, Counts: []uint64{1}}, DefaultConfig()); err == nil {
		t.Error("single bin should error")
	}
	bad := DefaultConfig()
	bad.OverflowRebinFraction = 0
	if _, err := FromSnapshot(&Snapshot{Lo: 1, Hi: 2, Counts: make([]uint64, 4)}, bad); err == nil {
		t.Error("bad config should error")
	}
	if _, err := UnmarshalSnapshot([]byte("{not json"), DefaultConfig()); err == nil {
		t.Error("bad json should error")
	}
}

func TestSnapshotEmptyHistogram(t *testing.T) {
	h := mustNew(t, smallCfg())
	h.ForceMeasurement()
	s, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSnapshot(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 {
		t.Errorf("count = %d", back.Count())
	}
	// An empty restored histogram still accepts new samples.
	if err := back.Record(1e-4); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 1 {
		t.Errorf("count after record = %d", back.Count())
	}
}
