package hist

import (
	"encoding/json"
	"fmt"
	"math"
)

// Snapshot is a serializable image of a measurement-phase Histogram. Real
// Treadmill deployments run instances on separate machines and ship their
// histograms to a coordinator; Snapshot/FromSnapshot plus MergeFrom give
// the same capability here (encoding/json on the wire).
type Snapshot struct {
	// Lo and Hi are the bin bounds, Counts the per-bin occupancy.
	Lo     float64  `json:"lo"`
	Hi     float64  `json:"hi"`
	Counts []uint64 `json:"counts"`
	// Underflow/Overflow carry out-of-range mass with their extreme
	// observed values so a receiver can re-bin losslessly enough.
	Underflow    uint64  `json:"underflow,omitempty"`
	Overflow     uint64  `json:"overflow,omitempty"`
	UnderflowMax float64 `json:"underflow_max,omitempty"`
	OverflowMax  float64 `json:"overflow_max,omitempty"`
	// Sum/Min/Max preserve the moment and range statistics.
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Snapshot captures the histogram's measurement state. The histogram must
// be in the measurement phase (force it with ForceMeasurement if a run was
// cut short).
func (h *Histogram) Snapshot() (*Snapshot, error) {
	if h.phase != Measurement {
		return nil, fmt.Errorf("hist: snapshot requires measurement phase, have %s", h.phase)
	}
	s := &Snapshot{
		Lo: h.lo, Hi: h.hi,
		Counts:       append([]uint64(nil), h.counts...),
		Underflow:    h.underflow,
		Overflow:     h.overflow,
		UnderflowMax: h.underMax,
		OverflowMax:  h.overMax,
		Sum:          h.sum,
		Min:          h.min,
		Max:          h.max,
	}
	if s.Min == math.Inf(1) { // empty histogram
		s.Min, s.Max = 0, 0
	}
	return s, nil
}

// MarshalJSON implements json.Marshaler for *Histogram via Snapshot.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	s, err := h.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// FromSnapshot reconstructs a measurement-phase Histogram. cfg supplies
// the re-binning policy going forward; the bin geometry comes from the
// snapshot itself.
func FromSnapshot(s *Snapshot, cfg Config) (*Histogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if s == nil || len(s.Counts) < 2 || !(s.Lo > 0) || s.Hi <= s.Lo {
		return nil, fmt.Errorf("hist: invalid snapshot")
	}
	cfg.Bins = len(s.Counts)
	h := &Histogram{cfg: cfg, phase: Measurement, min: math.Inf(1), max: math.Inf(-1)}
	h.setBounds(s.Lo, s.Hi)
	copy(h.counts, s.Counts)
	for _, c := range s.Counts {
		h.count += c
	}
	h.underflow = s.Underflow
	h.overflow = s.Overflow
	h.underMax = s.UnderflowMax
	h.overMax = s.OverflowMax
	h.sum = s.Sum
	if h.Count() > 0 {
		h.min = s.Min
		h.max = s.Max
	}
	return h, nil
}

// UnmarshalSnapshot decodes a JSON snapshot and reconstructs a histogram
// with the given config.
func UnmarshalSnapshot(data []byte, cfg Config) (*Histogram, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("hist: decode snapshot: %w", err)
	}
	return FromSnapshot(&s, cfg)
}
