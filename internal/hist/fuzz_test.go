package hist

import (
	"encoding/json"
	"testing"
)

// fuzzSnapJSON builds a seed-corpus snapshot via the real construction
// path so the seeds are representative of agent-shipped snapshots.
func fuzzSnapJSON(f *testing.F, lo, hi float64, bins int, samples []float64) []byte {
	f.Helper()
	cfg := DefaultConfig()
	cfg.Bins = bins
	h, err := NewWithBounds(cfg, lo, hi)
	if err != nil {
		f.Fatal(err)
	}
	for _, v := range samples {
		if err := h.Record(v); err != nil {
			f.Fatal(err)
		}
	}
	s, err := h.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// tooBig reports whether the snapshot's mass risks uint64 overflow when
// added to a peer's, which would make conservation checks meaningless.
func tooBig(s *Snapshot) bool {
	const limit = uint64(1) << 50
	total := s.Underflow + s.Overflow
	if s.Underflow > limit || s.Overflow > limit {
		return true
	}
	for _, c := range s.Counts {
		if c > limit {
			return true
		}
		total += c
		if total > limit {
			return true
		}
	}
	return false
}

// FuzzSnapshotMerge decodes two arbitrary JSON snapshots and merges them
// both ways, checking the distributed-aggregation invariants that the
// fleet coordinator depends on: validity is symmetric, the merge is
// commutative bin-for-bin, total mass is conserved, and quantile queries
// on the result never panic.
func FuzzSnapshotMerge(f *testing.F) {
	same1 := fuzzSnapJSON(f, 1e-6, 1, 64, []float64{1e-4, 2e-4, 5e-3, 0.9})
	same2 := fuzzSnapJSON(f, 1e-6, 1, 64, []float64{3e-5, 3e-5, 0.5})
	other := fuzzSnapJSON(f, 1e-5, 10, 48, []float64{2e-5, 4, 9.99})
	overflowing := fuzzSnapJSON(f, 1e-3, 1e-2, 16, []float64{1e-4, 5e-2, 0.5})
	empty := fuzzSnapJSON(f, 1e-6, 1, 64, nil)
	f.Add(same1, same2)
	f.Add(same1, other)
	f.Add(same1, overflowing)
	f.Add(empty, same2)
	f.Add([]byte(`{"lo":1,"hi":2,"counts":[1,2]}`), []byte(`{"lo":0,"hi":2,"counts":[1,2]}`))
	f.Add([]byte(`{}`), []byte(`not json`))
	f.Add([]byte(`{"lo":5e-324,"hi":1e308,"counts":[1,0,3]}`), []byte(`{"lo":1,"hi":1.0000000000000002,"counts":[7,9]}`))

	f.Fuzz(func(t *testing.T, aj, bj []byte) {
		var a, b Snapshot
		if json.Unmarshal(aj, &a) != nil || json.Unmarshal(bj, &b) != nil {
			t.Skip()
		}
		ab, errAB := a.Merge(&b)
		ba, errBA := b.Merge(&a)
		if (errAB == nil) != (errBA == nil) {
			t.Fatalf("asymmetric validity: a.Merge(b)=%v, b.Merge(a)=%v", errAB, errBA)
		}
		if errAB != nil {
			return
		}
		if tooBig(&a) || tooBig(&b) {
			return
		}
		if got, want := ab.Count(), a.Count()+b.Count(); got != want {
			t.Fatalf("mass not conserved: merged %d, inputs %d", got, want)
		}
		if ab.Lo != ba.Lo || ab.Hi != ba.Hi || len(ab.Counts) != len(ba.Counts) {
			t.Fatalf("merge not commutative in geometry: [%g,%g)x%d vs [%g,%g)x%d",
				ab.Lo, ab.Hi, len(ab.Counts), ba.Lo, ba.Hi, len(ba.Counts))
		}
		for i := range ab.Counts {
			if ab.Counts[i] != ba.Counts[i] {
				t.Fatalf("merge not commutative: bin %d has %d vs %d", i, ab.Counts[i], ba.Counts[i])
			}
		}
		if ab.Underflow != ba.Underflow || ab.Overflow != ba.Overflow {
			t.Fatalf("merge not commutative in out-of-range mass: %d/%d vs %d/%d",
				ab.Underflow, ab.Overflow, ba.Underflow, ba.Overflow)
		}
		if a.Count() > 0 && b.Count() > 0 && (ab.Min != ba.Min || ab.Max != ba.Max) {
			t.Fatalf("merge not commutative in range: [%g,%g] vs [%g,%g]", ab.Min, ab.Max, ba.Min, ba.Max)
		}
		// Quantile queries on merged junk must never panic.
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			ab.Quantile(q) //nolint:errcheck // empty merges legitimately error
		}
		// The result must itself be mergeable (closure under Merge).
		if _, err := ab.Merge(ba); err != nil {
			t.Fatalf("merged snapshot not re-mergeable: %v", err)
		}
	})
}
