package hist

import (
	"math"
	"reflect"
	"testing"

	"treadmill/internal/dist"
)

// fixedHist returns a measurement-phase histogram with fixed bounds so
// snapshots share geometry across instances.
func fixedHist(t *testing.T, lo, hi float64, bins int) *Histogram {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Bins = bins
	h, err := NewWithBounds(cfg, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func record(t *testing.T, h *Histogram, vs []float64) {
	t.Helper()
	for _, v := range vs {
		if err := h.Record(v); err != nil {
			t.Fatal(err)
		}
	}
}

func snap(t *testing.T, h *Histogram) *Snapshot {
	t.Helper()
	s, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// integerSamples draws rng samples restricted to exact integer values so
// float sums are associative bit-for-bit in the tests below.
func integerSamples(seed uint64, n int, lo, span int) []float64 {
	rng := dist.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(lo + rng.Intn(span))
	}
	return out
}

func TestMergeCommutative(t *testing.T) {
	a := fixedHist(t, 1, 1000, 64)
	record(t, a, integerSamples(1, 500, 2, 400))
	// b has different geometry on purpose: commutativity must survive the
	// union-geometry re-binning path.
	b := fixedHist(t, 0.5, 4000, 128)
	record(t, b, integerSamples(2, 700, 1, 3000))

	ab, err := snap(t, a).Merge(snap(t, b))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := snap(t, b).Merge(snap(t, a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge is not commutative:\nab=%+v\nba=%+v", ab, ba)
	}
	if got, want := ab.Count(), uint64(1200); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
}

func TestMergeAssociativeSameGeometry(t *testing.T) {
	mk := func(seed uint64) *Snapshot {
		h := fixedHist(t, 1, 1000, 64)
		record(t, h, integerSamples(seed, 400, 2, 800))
		return snap(t, h)
	}
	a, b, c := mk(1), mk(2), mk(3)

	ab, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	left, err := ab.Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := b.Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	right, err := a.Merge(bc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("same-geometry merge is not associative:\n(ab)c=%+v\na(bc)=%+v", left, right)
	}
}

func TestMergeAssociativeAcrossGeometriesWithinBin(t *testing.T) {
	mk := func(seed uint64, lo, hi float64, bins int) *Snapshot {
		h := fixedHist(t, lo, hi, bins)
		record(t, h, integerSamples(seed, 400, 2, 500))
		return snap(t, h)
	}
	a := mk(1, 1, 600, 64)
	b := mk(2, 0.5, 900, 96)
	c := mk(3, 2, 1200, 128)

	ab, _ := a.Merge(b)
	left, _ := ab.Merge(c)
	bc, _ := b.Merge(c)
	right, _ := a.Merge(bc)
	if left.Count() != right.Count() {
		t.Fatalf("counts differ across groupings: %d vs %d", left.Count(), right.Count())
	}
	// Redistribution at midpoints means cross-geometry associativity holds
	// only up to one (coarsest) bin width: verify quantiles agree to that
	// resolution.
	binRatio := math.Pow(right.Hi/right.Lo, 1.0/64) // coarsest input resolution
	for _, q := range []float64{0.5, 0.9, 0.99} {
		lv, err := left.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := right.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := math.Max(lv, rv) / math.Min(lv, rv); ratio > binRatio*binRatio {
			t.Fatalf("p%g differs across groupings beyond bin resolution: %g vs %g (ratio %g)", q*100, lv, rv, ratio)
		}
	}
}

// TestMergePitfall2SkewedClients is the paper's pitfall-2 demonstration:
// on skewed per-client distributions, averaging per-client P99s gives a
// different (wrong) answer than reading P99 from the merged histogram,
// and the merged histogram matches a single histogram that saw every
// sample.
func TestMergePitfall2SkewedClients(t *testing.T) {
	const clients = 8
	combined := fixedHist(t, 1e-5, 10, 512)
	perClient := make([]*Snapshot, clients)
	perClientP99 := make([]float64, clients)
	for i := 0; i < clients; i++ {
		h := fixedHist(t, 1e-5, 10, 512)
		rng := dist.NewRNG(uint64(100 + i))
		n := 2000
		for j := 0; j < n; j++ {
			v := 0.001 * (1 + rng.Float64()) // ~1-2ms body
			if i == clients-1 {
				v = 0.050 * (1 + rng.Float64()) // one slow client: 50-100ms
			}
			if err := h.Record(v); err != nil {
				t.Fatal(err)
			}
			if err := combined.Record(v); err != nil {
				t.Fatal(err)
			}
		}
		perClient[i] = snap(t, h)
		p99, err := h.Quantile(0.99)
		if err != nil {
			t.Fatal(err)
		}
		perClientP99[i] = p99
	}

	merged, err := MergeSnapshots(perClient...)
	if err != nil {
		t.Fatal(err)
	}
	mergedP99, err := merged.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	meanOfP99 := 0.0
	for _, v := range perClientP99 {
		meanOfP99 += v
	}
	meanOfP99 /= clients

	// The slow client owns the pooled tail: merged P99 sits in its 50ms+
	// regime while the mean of per-client P99s is dragged toward the 2ms
	// fast-client ceiling. They must differ grossly.
	if rel := math.Abs(mergedP99-meanOfP99) / mergedP99; rel < 0.2 {
		t.Fatalf("expected merged P99 (%g) to differ from mean of per-client P99s (%g) on skewed inputs", mergedP99, meanOfP99)
	}
	// And the merged histogram is the pooled distribution: identical
	// geometry means identical counts, so the quantile matches a single
	// combined histogram exactly.
	combinedP99, err := combined.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if mergedP99 != combinedP99 {
		t.Fatalf("merged P99 %g != combined-histogram P99 %g", mergedP99, combinedP99)
	}
	cs := snap(t, combined)
	if !reflect.DeepEqual(merged.Counts, cs.Counts) {
		t.Fatal("merged bin counts differ from a single combined histogram")
	}
}

func TestMergeStatistics(t *testing.T) {
	a := fixedHist(t, 1, 100, 32)
	record(t, a, []float64{2, 3, 4})
	b := fixedHist(t, 1, 100, 32)
	record(t, b, []float64{50, 60})

	m, err := snap(t, a).Merge(snap(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if m.Sum != 119 {
		t.Fatalf("Sum = %g, want 119", m.Sum)
	}
	if m.Min != 2 || m.Max != 60 {
		t.Fatalf("range = [%g, %g], want [2, 60]", m.Min, m.Max)
	}
	if m.Count() != 5 {
		t.Fatalf("Count = %d, want 5", m.Count())
	}
}

func TestMergeEmptyAndInvalid(t *testing.T) {
	a := fixedHist(t, 1, 100, 32)
	record(t, a, []float64{2, 3})
	empty := fixedHist(t, 1, 100, 32)

	m, err := snap(t, a).Merge(snap(t, empty))
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 || m.Min != 2 || m.Max != 3 {
		t.Fatalf("merge with empty lost data: %+v", m)
	}
	if _, err := snap(t, a).Merge(&Snapshot{}); err == nil {
		t.Fatal("expected error merging an invalid snapshot")
	}
	var nilSnap *Snapshot
	if _, err := nilSnap.Merge(snap(t, a)); err == nil {
		t.Fatal("expected error merging from a nil snapshot")
	}
}

func TestMergeOverflowMass(t *testing.T) {
	a := fixedHist(t, 1, 10, 16)
	// Overflowing samples: NewWithBounds histograms still re-bin, so feed
	// few enough to stay below the rebin trigger (16 out-of-range).
	record(t, a, []float64{2, 3, 20, 30})
	sa := snap(t, a)
	if sa.Overflow == 0 {
		t.Fatal("test setup: expected overflow mass")
	}
	b := fixedHist(t, 1, 100, 16)
	record(t, b, []float64{5, 50})
	m, err := sa.Merge(snap(t, b))
	if err != nil {
		t.Fatal(err)
	}
	// a's overflow mass falls inside b's wider range and must be
	// redistributed into bins, not dropped.
	if m.Count() != 6 {
		t.Fatalf("Count = %d, want 6", m.Count())
	}
	if m.Max != 50 {
		t.Fatalf("Max = %g, want 50", m.Max)
	}
}

func TestSnapshotQuantileMatchesHistogram(t *testing.T) {
	h := fixedHist(t, 1e-4, 1, 256)
	rng := dist.NewRNG(7)
	for i := 0; i < 5000; i++ {
		if err := h.Record(0.001 + 0.01*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	s := snap(t, h)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		hv, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if hv != sv {
			t.Fatalf("p%g: snapshot %g != histogram %g", q*100, sv, hv)
		}
	}
}
