package hist

import (
	"testing"

	"treadmill/internal/dist"
)

func benchSamples(n int) []float64 {
	rng := dist.NewRNG(1)
	l := dist.LognormalFromMoments(100e-6, 1.0)
	out := make([]float64, n)
	for i := range out {
		out[i] = l.Sample(rng)
	}
	return out
}

func BenchmarkRecord(b *testing.B) {
	samples := benchSamples(100000)
	h, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Record(samples[i%len(samples)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantile(b *testing.B) {
	samples := benchSamples(100000)
	h, _ := New(Config{WarmupSamples: 0, CalibrationSamples: 1000, Bins: 4096, OverflowRebinFraction: 0.001})
	for _, v := range samples {
		if err := h.Record(v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Quantile(0.99); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	samples := benchSamples(50000)
	mk := func() *Histogram {
		h, _ := New(Config{WarmupSamples: 0, CalibrationSamples: 1000, Bins: 4096, OverflowRebinFraction: 0.001})
		for _, v := range samples {
			h.Record(v)
		}
		return h
	}
	src := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dst := mk()
		b.StartTimer()
		if err := dst.MergeFrom(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactQuantile(b *testing.B) {
	samples := benchSamples(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactQuantile(samples, 0.99); err != nil {
			b.Fatal(err)
		}
	}
}
