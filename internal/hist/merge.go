package hist

import (
	"fmt"
	"math"
)

// Count returns the total sample mass the snapshot carries, including
// out-of-range mass.
func (s *Snapshot) Count() uint64 {
	n := s.Underflow + s.Overflow
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// sameGeometry reports whether two snapshots share bin bounds and count.
func (s *Snapshot) sameGeometry(o *Snapshot) bool {
	return s.Lo == o.Lo && s.Hi == o.Hi && len(s.Counts) == len(o.Counts)
}

// validate rejects snapshots Merge cannot interpret.
func (s *Snapshot) validate() error {
	if s == nil {
		return fmt.Errorf("hist: nil snapshot")
	}
	if len(s.Counts) < 2 || !(s.Lo > 0) || s.Hi <= s.Lo {
		return fmt.Errorf("hist: invalid snapshot geometry [%g,%g) with %d bins", s.Lo, s.Hi, len(s.Counts))
	}
	return nil
}

// Merge combines two histogram snapshots into a new one, leaving both
// inputs untouched. This is the distributed-aggregation primitive: each
// fleet agent ships its own snapshot and the coordinator folds them
// bin-wise into the campaign-level distribution, from which quantiles are
// read directly — the paper's pitfall 2 is averaging per-client quantiles
// instead, which a merged histogram never does.
//
// When both snapshots share bin geometry (the common case for agents that
// share calibration bounds, see NewWithBounds), counts add bin-for-bin and
// the merge is exact: commutative, associative, and identical to a single
// histogram that observed every sample. When geometries differ, both are
// redistributed at log-space bin midpoints into the union geometry
// (lo = min, hi = max, bins = max) — still exactly commutative, but
// associative only up to one bin width of redistribution error, the same
// trade the adaptive histogram's own re-binning makes.
func (s *Snapshot) Merge(other *Snapshot) (*Snapshot, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if err := other.validate(); err != nil {
		return nil, err
	}
	a, b := s, other
	out := &Snapshot{}
	if a.sameGeometry(b) {
		out.Lo, out.Hi = a.Lo, a.Hi
		out.Counts = make([]uint64, len(a.Counts))
		for i := range a.Counts {
			out.Counts[i] = a.Counts[i] + b.Counts[i]
		}
		out.Underflow = a.Underflow + b.Underflow
		out.Overflow = a.Overflow + b.Overflow
		out.UnderflowMax = math.Max(a.UnderflowMax, b.UnderflowMax)
		out.OverflowMax = math.Max(a.OverflowMax, b.OverflowMax)
	} else {
		// Union geometry is a symmetric function of the inputs, so the
		// merge stays commutative even when re-binning is needed.
		out.Lo = math.Min(a.Lo, b.Lo)
		out.Hi = math.Max(a.Hi, b.Hi)
		bins := len(a.Counts)
		if len(b.Counts) > bins {
			bins = len(b.Counts)
		}
		out.Counts = make([]uint64, bins)
		for _, in := range []*Snapshot{a, b} {
			redistribute(out, in)
		}
	}
	// Moment and range statistics combine exactly (float addition is
	// commutative; min/max are associative).
	out.Sum = a.Sum + b.Sum
	switch {
	case a.Count() == 0:
		out.Min, out.Max = b.Min, b.Max
	case b.Count() == 0:
		out.Min, out.Max = a.Min, a.Max
	default:
		out.Min = math.Min(a.Min, b.Min)
		out.Max = math.Max(a.Max, b.Max)
	}
	return out, nil
}

// redistribute folds in's bucket mass into out at log-space bin midpoints.
func redistribute(out, in *Snapshot) {
	logLo := math.Log(in.Lo)
	logWidth := (math.Log(in.Hi) - logLo) / float64(len(in.Counts))
	for i, c := range in.Counts {
		if c == 0 {
			continue
		}
		mid := math.Exp(logLo + (float64(i)+0.5)*logWidth)
		out.addMass(mid, c)
	}
	if in.Underflow > 0 {
		out.addMass(in.UnderflowMax, in.Underflow)
	}
	if in.Overflow > 0 {
		out.addMass(in.OverflowMax, in.Overflow)
	}
}

// addMass adds c samples at value v to the snapshot's bins.
func (s *Snapshot) addMass(v float64, c uint64) {
	switch {
	case v < s.Lo:
		s.Underflow += c
		s.UnderflowMax = math.Max(s.UnderflowMax, v)
	case v >= s.Hi:
		s.Overflow += c
		s.OverflowMax = math.Max(s.OverflowMax, v)
	default:
		logLo := math.Log(s.Lo)
		logWidth := (math.Log(s.Hi) - logLo) / float64(len(s.Counts))
		idx := int((math.Log(v) - logLo) / logWidth)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s.Counts) {
			idx = len(s.Counts) - 1
		}
		s.Counts[idx] += c
	}
}

// MergeSnapshots folds a set of snapshots left to right, skipping nils.
// It returns nil when no snapshot carries data.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	var acc *Snapshot
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if acc == nil {
			cp := *s
			cp.Counts = append([]uint64(nil), s.Counts...)
			acc = &cp
			continue
		}
		var err error
		if acc, err = acc.Merge(s); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Quantile reads the q-th quantile directly from the snapshot, using the
// same log-space interpolation as Histogram. It lets a coordinator answer
// quantile queries from merged snapshots without round-tripping through a
// Histogram (and makes *Snapshot an agg.QuantileSource).
func (s *Snapshot) Quantile(q float64) (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	h, err := FromSnapshot(s, snapshotConfig(len(s.Counts)))
	if err != nil {
		return 0, err
	}
	return h.Quantile(q)
}

// snapshotConfig returns a valid config for reconstructing a snapshot with
// the given bin count (the re-binning policy is irrelevant for read-only
// quantile queries).
func snapshotConfig(bins int) Config {
	cfg := DefaultConfig()
	cfg.Bins = bins
	return cfg
}

// NewWithBounds returns a histogram that skips warm-up and calibration and
// starts measuring immediately with the given fixed bin bounds. A fleet
// coordinator fans identical bounds out to every agent so their snapshots
// share geometry and merge exactly (commutative, associative, and equal to
// a single combined histogram). The re-binning policy from cfg still
// applies if samples overflow the agreed bounds.
func NewWithBounds(cfg Config, lo, hi float64) (*Histogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !(lo > 0) || hi <= lo {
		return nil, fmt.Errorf("hist: invalid bounds [%g, %g)", lo, hi)
	}
	h := &Histogram{cfg: cfg, phase: Measurement, min: math.Inf(1), max: math.Inf(-1)}
	h.setBounds(lo, hi)
	return h, nil
}
