package hist

import (
	"math"
	"reflect"
	"testing"

	"treadmill/internal/dist"
)

// shardSnapshot records n lognormal samples into a fresh histogram with
// the given geometry and returns its snapshot.
func shardSnapshot(t *testing.T, rng *dist.RNG, n, bins int, lo, hi float64) *Snapshot {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Bins = bins
	h, err := NewWithBounds(cfg, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	ln := dist.Lognormal{Mu: math.Log(1e-4), Sigma: 1.2} // spans under- and overflow
	for i := 0; i < n; i++ {
		if err := h.Record(ln.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMergeCommutativeRandomShards(t *testing.T) {
	rng := dist.NewRNG(21)
	for trial := 0; trial < 20; trial++ {
		a := shardSnapshot(t, rng, 500+rng.Intn(2000), 256, 1e-6, 1e-2)
		b := shardSnapshot(t, rng, 500+rng.Intn(2000), 256, 1e-6, 1e-2)
		ab, err := a.Merge(b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := b.Merge(a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: same-geometry merge not exactly commutative:\n%+v\nvs\n%+v", trial, ab, ba)
		}
	}
}

func TestMergeAssociativeRandomShards(t *testing.T) {
	rng := dist.NewRNG(22)
	for trial := 0; trial < 20; trial++ {
		a := shardSnapshot(t, rng, 500+rng.Intn(2000), 256, 1e-6, 1e-2)
		b := shardSnapshot(t, rng, 500+rng.Intn(2000), 256, 1e-6, 1e-2)
		c := shardSnapshot(t, rng, 500+rng.Intn(2000), 256, 1e-6, 1e-2)
		ab, err := a.Merge(b)
		if err != nil {
			t.Fatal(err)
		}
		abc1, err := ab.Merge(c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := b.Merge(c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := a.Merge(bc)
		if err != nil {
			t.Fatal(err)
		}
		// Counts are integer-exact; Sum differs only by float addition
		// order, so compare it with a relative tolerance and everything
		// else exactly.
		sum1, sum2 := abc1.Sum, abc2.Sum
		abc1.Sum, abc2.Sum = 0, 0
		if !reflect.DeepEqual(abc1, abc2) {
			t.Fatalf("trial %d: same-geometry merge not associative:\n%+v\nvs\n%+v", trial, abc1, abc2)
		}
		if math.Abs(sum1-sum2) > math.Abs(sum1)*1e-12 {
			t.Fatalf("trial %d: sums diverge beyond float reassociation: %g vs %g", trial, sum1, sum2)
		}
	}
}

func TestMergeIdentity(t *testing.T) {
	rng := dist.NewRNG(23)
	a := shardSnapshot(t, rng, 3000, 256, 1e-6, 1e-2)
	id := shardSnapshot(t, rng, 0, 256, 1e-6, 1e-2)
	left, err := id.Merge(a)
	if err != nil {
		t.Fatal(err)
	}
	right, err := a.Merge(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(left, a) {
		t.Fatalf("empty.Merge(a) != a:\n%+v\nvs\n%+v", left, a)
	}
	if !reflect.DeepEqual(right, a) {
		t.Fatalf("a.Merge(empty) != a:\n%+v\nvs\n%+v", right, a)
	}
}

func TestMergeEqualsSingleHistogram(t *testing.T) {
	// Sharding samples across agents and merging their snapshots must be
	// bin-identical to one histogram that observed every sample — the
	// exactness claim NewWithBounds makes for fleet campaigns.
	rng := dist.NewRNG(24)
	cfg := DefaultConfig()
	cfg.Bins = 512
	whole, err := NewWithBounds(cfg, 1e-6, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 7
	parts := make([]*Histogram, shards)
	for i := range parts {
		if parts[i], err = NewWithBounds(cfg, 1e-6, 1e-2); err != nil {
			t.Fatal(err)
		}
	}
	ln := dist.Lognormal{Mu: math.Log(1e-4), Sigma: 1.2}
	const n = 20000
	for i := 0; i < n; i++ {
		v := ln.Sample(rng)
		if err := whole.Record(v); err != nil {
			t.Fatal(err)
		}
		if err := parts[i%shards].Record(v); err != nil {
			t.Fatal(err)
		}
	}
	snaps := make([]*Snapshot, shards)
	for i, p := range parts {
		if snaps[i], err = p.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := whole.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Counts, want.Counts) {
		t.Fatal("merged shard bins differ from the single-histogram bins")
	}
	if merged.Underflow != want.Underflow || merged.Overflow != want.Overflow {
		t.Fatalf("out-of-range mass differs: %d/%d vs %d/%d",
			merged.Underflow, merged.Overflow, want.Underflow, want.Overflow)
	}
	if merged.Min != want.Min || merged.Max != want.Max {
		t.Fatalf("range differs: [%g,%g] vs [%g,%g]", merged.Min, merged.Max, want.Min, want.Max)
	}
	if math.Abs(merged.Sum-want.Sum) > math.Abs(want.Sum)*1e-9 {
		t.Fatalf("sums differ beyond float reassociation: %g vs %g", merged.Sum, want.Sum)
	}
}

func TestMergeCommutativeUnionGeometry(t *testing.T) {
	rng := dist.NewRNG(25)
	for trial := 0; trial < 20; trial++ {
		a := shardSnapshot(t, rng, 500+rng.Intn(2000), 128+rng.Intn(4)*64, 1e-6, 1e-2)
		b := shardSnapshot(t, rng, 500+rng.Intn(2000), 128+rng.Intn(4)*64, 5e-6, 5e-2)
		ab, err := a.Merge(b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := b.Merge(a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: union-geometry merge not commutative:\n%+v\nvs\n%+v", trial, ab, ba)
		}
	}
}

func TestMergeUnionGeometryAssociativeWithinBinWidth(t *testing.T) {
	// Mixed geometries redistribute at bin midpoints, so associativity
	// holds only up to bin resolution — but mass conservation stays exact
	// and quantiles from either association must agree within a couple of
	// bin widths.
	rng := dist.NewRNG(26)
	a := shardSnapshot(t, rng, 4000, 256, 1e-6, 1e-2)
	b := shardSnapshot(t, rng, 4000, 192, 5e-6, 5e-2)
	c := shardSnapshot(t, rng, 4000, 320, 2e-6, 2e-2)
	ab, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	abc1, err := ab.Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := b.Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	abc2, err := a.Merge(bc)
	if err != nil {
		t.Fatal(err)
	}
	if abc1.Count() != abc2.Count() {
		t.Fatalf("mass depends on association: %d vs %d", abc1.Count(), abc2.Count())
	}
	// Union geometry: lo/hi are min/max over inputs — association-free.
	if abc1.Lo != abc2.Lo || abc1.Hi != abc2.Hi {
		t.Fatalf("union bounds depend on association: [%g,%g) vs [%g,%g)", abc1.Lo, abc1.Hi, abc2.Lo, abc2.Hi)
	}
	binRatio := math.Exp(math.Log(abc1.Hi/abc1.Lo) / float64(len(abc1.Counts)))
	tol := binRatio*binRatio - 1 // two bin widths, relative
	for _, q := range []float64{0.5, 0.9, 0.99} {
		q1, err := abc1.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := abc2.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(q1-q2) / q1; rel > tol {
			t.Fatalf("P%g depends on association beyond bin resolution: %g vs %g (rel %g > %g)",
				q*100, q1, q2, rel, tol)
		}
	}
}
