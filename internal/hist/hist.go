// Package hist implements Treadmill's adaptive latency histogram.
//
// The paper (§II-B, §III-A) identifies two aggregation pitfalls in prior
// load testers: statically configured histogram buckets that saturate when
// the server approaches steady state at high load, and lossy singular point
// estimates. Treadmill instead runs each measurement through three phases —
// warm-up (samples discarded), calibration (raw samples buffered to choose
// bin bounds), and measurement (samples binned) — and re-bins the histogram
// whenever enough samples land outside its current bounds.
//
// Histogram provides that behaviour. StaticHistogram reproduces the broken
// fixed-bucket design so experiments can demonstrate the bias it introduces.
package hist

import (
	"fmt"
	"math"
	"sort"
)

// Phase identifies which stage of the measurement lifecycle a Histogram is
// in. Phases advance monotonically: Warmup → Calibration → Measurement.
type Phase int

// The three phases of a Treadmill measurement (paper §III-A).
const (
	Warmup Phase = iota
	Calibration
	Measurement
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Warmup:
		return "warmup"
	case Calibration:
		return "calibration"
	case Measurement:
		return "measurement"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Config controls histogram sizing and the phase transitions.
type Config struct {
	// WarmupSamples is the number of initial samples to discard.
	WarmupSamples int
	// CalibrationSamples is the number of raw samples buffered to choose
	// the initial bin bounds.
	CalibrationSamples int
	// Bins is the number of buckets. More bins reduce quantile
	// interpolation error at the cost of memory.
	Bins int
	// OverflowRebinFraction is the fraction of measured samples allowed to
	// land in the overflow (or underflow) region before the histogram
	// re-bins itself to widen its bounds. The paper re-bins "when
	// sufficient amount of values exceed the histogram limits".
	OverflowRebinFraction float64
}

// DefaultConfig returns the configuration used by the Treadmill engine:
// 1k warm-up samples, 5k calibration samples, 4096 log-spaced bins, and
// re-binning once 0.1% of samples overflow.
func DefaultConfig() Config {
	return Config{
		WarmupSamples:         1000,
		CalibrationSamples:    5000,
		Bins:                  4096,
		OverflowRebinFraction: 0.001,
	}
}

func (c Config) validate() error {
	if c.WarmupSamples < 0 {
		return fmt.Errorf("hist: WarmupSamples %d must be >= 0", c.WarmupSamples)
	}
	if c.CalibrationSamples < 1 {
		return fmt.Errorf("hist: CalibrationSamples %d must be >= 1", c.CalibrationSamples)
	}
	if c.Bins < 2 {
		return fmt.Errorf("hist: Bins %d must be >= 2", c.Bins)
	}
	if c.OverflowRebinFraction <= 0 || c.OverflowRebinFraction >= 1 {
		return fmt.Errorf("hist: OverflowRebinFraction %g must be in (0,1)", c.OverflowRebinFraction)
	}
	return nil
}

// Histogram is an adaptive, log-spaced latency histogram with the
// warm-up / calibration / measurement lifecycle. Values are float64 in the
// caller's unit (the Treadmill engine records seconds).
//
// Histogram is not safe for concurrent use; each load-generating goroutine
// owns one and they are merged afterwards.
type Histogram struct {
	cfg   Config
	phase Phase

	warmupSeen int
	calBuf     []float64

	lo, hi    float64 // bin bounds (lo > 0; bins are log-spaced)
	logLo     float64
	logWidth  float64 // log(hi/lo) / bins
	counts    []uint64
	count     uint64 // samples in bins (excluding under/overflow)
	underflow uint64
	overflow  uint64
	underMax  float64 // largest underflowed value, for re-binning
	overMax   float64 // largest overflowed value, for re-binning
	sum       float64
	min, max  float64
	rebinOps  int // number of re-bin events, exposed for tests/ablation
}

// New returns a Histogram with the given configuration. The zero Config is
// invalid; use DefaultConfig as a starting point.
func New(cfg Config) (*Histogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Histogram{
		cfg:    cfg,
		phase:  phaseForWarmup(cfg),
		calBuf: make([]float64, 0, cfg.CalibrationSamples),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}, nil
}

func phaseForWarmup(cfg Config) Phase {
	if cfg.WarmupSamples == 0 {
		return Calibration
	}
	return Warmup
}

// Phase reports the current lifecycle phase.
func (h *Histogram) Phase() Phase { return h.phase }

// Rebins reports how many times the histogram re-binned itself to
// accommodate out-of-range samples.
func (h *Histogram) Rebins() int { return h.rebinOps }

// Record adds one sample. Non-positive, NaN, and infinite values are
// rejected with an error: a latency can never be <= 0, so such a value
// indicates a measurement bug the caller must know about.
func (h *Histogram) Record(v float64) error {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("hist: invalid latency sample %g", v)
	}
	switch h.phase {
	case Warmup:
		h.warmupSeen++
		if h.warmupSeen >= h.cfg.WarmupSamples {
			h.phase = Calibration
		}
	case Calibration:
		h.calBuf = append(h.calBuf, v)
		if len(h.calBuf) >= h.cfg.CalibrationSamples {
			h.calibrate()
		}
	case Measurement:
		h.insert(v)
		h.maybeRebin()
	}
	return nil
}

// calibrate chooses bin bounds from the buffered samples and transitions to
// the measurement phase. Bounds are padded beyond the observed range so
// that steady-state drift does not immediately overflow.
func (h *Histogram) calibrate() {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range h.calBuf {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// Pad: half the minimum below, 4x the maximum above. Tail samples grow
	// upward, so the padding is asymmetric.
	h.setBounds(lo/2, hi*4)
	h.phase = Measurement
	// The calibration samples themselves are kept: they were measured
	// after warm-up and carry information.
	for _, v := range h.calBuf {
		h.insert(v)
	}
	h.calBuf = nil
}

func (h *Histogram) setBounds(lo, hi float64) {
	if hi <= lo {
		hi = lo * 2
	}
	h.lo, h.hi = lo, hi
	h.logLo = math.Log(lo)
	h.logWidth = (math.Log(hi) - h.logLo) / float64(h.cfg.Bins)
	h.counts = make([]uint64, h.cfg.Bins)
}

// binIndex returns the bucket for v, or -1 / Bins for under/overflow.
func (h *Histogram) binIndex(v float64) int {
	if v < h.lo {
		return -1
	}
	if v >= h.hi {
		return h.cfg.Bins
	}
	idx := int((math.Log(v) - h.logLo) / h.logWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= h.cfg.Bins {
		idx = h.cfg.Bins - 1
	}
	return idx
}

func (h *Histogram) insert(v float64) {
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
	switch idx := h.binIndex(v); {
	case idx < 0:
		h.underflow++
		h.underMax = math.Max(h.underMax, v)
	case idx >= h.cfg.Bins:
		h.overflow++
		h.overMax = math.Max(h.overMax, v)
	default:
		h.counts[idx]++
		h.count++
	}
}

// maybeRebin widens the bounds when too many samples fell outside them.
// Existing bucket mass is redistributed by bucket midpoint, which loses at
// most one (old) bucket width of resolution — the same trade the paper's
// implementation makes.
func (h *Histogram) maybeRebin() {
	total := h.count + h.underflow + h.overflow
	if total == 0 {
		return
	}
	frac := float64(h.underflow+h.overflow) / float64(total)
	if frac < h.cfg.OverflowRebinFraction || h.underflow+h.overflow < 16 {
		return
	}
	newLo, newHi := h.lo, h.hi
	if h.underflow > 0 {
		newLo = math.Min(newLo, h.min/2)
	}
	if h.overflow > 0 {
		newHi = math.Max(newHi, h.max*4)
	}
	h.rebinInto(newLo, newHi)
}

func (h *Histogram) rebinInto(newLo, newHi float64) {
	old := h.counts
	oldLo, oldWidth := h.logLo, h.logWidth
	oldUnder, oldOver := h.underflow, h.overflow
	oldUnderMax, oldOverMax := h.underMax, h.overMax

	h.setBounds(newLo, newHi)
	h.count, h.underflow, h.overflow = 0, 0, 0
	h.underMax, h.overMax = 0, 0
	// Redistribute old bucket mass at bucket midpoints (in log space).
	for i, c := range old {
		if c == 0 {
			continue
		}
		mid := math.Exp(oldLo + (float64(i)+0.5)*oldWidth)
		h.addBulk(mid, c)
	}
	// Out-of-range mass is re-inserted at the most informative point we
	// kept: the extreme observed value on that side.
	if oldUnder > 0 {
		h.addBulk(oldUnderMax, oldUnder)
	}
	if oldOver > 0 {
		h.addBulk(oldOverMax, oldOver)
	}
	h.rebinOps++
}

func (h *Histogram) addBulk(v float64, c uint64) {
	switch idx := h.binIndex(v); {
	case idx < 0:
		h.underflow += c
		h.underMax = math.Max(h.underMax, v)
	case idx >= h.cfg.Bins:
		h.overflow += c
		h.overMax = math.Max(h.overMax, v)
	default:
		h.counts[idx] += c
		h.count += c
	}
}

// Count returns the number of samples recorded during measurement
// (including any that over/underflowed the current bounds).
func (h *Histogram) Count() uint64 { return h.count + h.underflow + h.overflow }

// Mean returns the mean of measured samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.sum / float64(n)
}

// Min returns the smallest measured sample, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest measured sample, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the measured samples,
// interpolated within the containing bucket in log space. It returns an
// error when no samples have been measured or q is out of range.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("hist: quantile %g out of [0,1]", q)
	}
	total := h.Count()
	if total == 0 {
		return 0, fmt.Errorf("hist: quantile of empty histogram (phase %s)", h.phase)
	}
	if q == 0 {
		return h.min, nil
	}
	if q == 1 {
		return h.max, nil
	}
	target := q * float64(total)
	acc := float64(h.underflow)
	if target <= acc && h.underflow > 0 {
		return h.underMax, nil
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := acc + float64(c)
		if target <= next {
			// Interpolate within the bucket in log space.
			fracIn := (target - acc) / float64(c)
			loEdge := h.logLo + float64(i)*h.logWidth
			v := math.Exp(loEdge + fracIn*h.logWidth)
			// Clamp to the observed range; interpolation can slightly
			// exceed it at the extremes.
			return math.Min(math.Max(v, h.min), h.max), nil
		}
		acc = next
	}
	return h.max, nil
}

// Quantiles evaluates several quantiles at once.
func (h *Histogram) Quantiles(qs ...float64) ([]float64, error) {
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, err := h.Quantile(q)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// CDF returns the empirical CDF as parallel slices of bucket upper edges
// and cumulative probabilities. Useful for rendering the paper's CDF
// figures.
func (h *Histogram) CDF() (values, probs []float64) {
	total := h.Count()
	if total == 0 {
		return nil, nil
	}
	acc := float64(h.underflow)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		acc += float64(c)
		values = append(values, math.Exp(h.logLo+float64(i+1)*h.logWidth))
		probs = append(probs, acc/float64(total))
	}
	if h.overflow > 0 {
		values = append(values, h.max)
		probs = append(probs, 1)
	}
	return values, probs
}

// MergeFrom folds other's measured samples into h by re-inserting other's
// bucket mass at bucket midpoints. Both histograms must be in the
// measurement phase.
//
// Note this produces the *pooled* distribution. The paper shows pooling
// across clients biases high quantiles (Fig. 2); the agg package implements
// the correct per-instance aggregation. Pooling remains valid for combining
// the per-connection histograms of a single instance.
func (h *Histogram) MergeFrom(other *Histogram) error {
	if h.phase != Measurement || other.phase != Measurement {
		return fmt.Errorf("hist: merge requires both histograms in measurement phase (have %s, %s)", h.phase, other.phase)
	}
	h.sum += other.sum
	h.min = math.Min(h.min, other.min)
	h.max = math.Max(h.max, other.max)
	for i, c := range other.counts {
		if c == 0 {
			continue
		}
		mid := math.Exp(other.logLo + (float64(i)+0.5)*other.logWidth)
		h.addBulk(mid, c)
	}
	if other.underflow > 0 {
		h.addBulk(other.underMax, other.underflow)
	}
	if other.overflow > 0 {
		h.addBulk(other.overMax, other.overflow)
	}
	h.maybeRebin()
	return nil
}

// ForceMeasurement skips any remaining warm-up/calibration and transitions
// to measurement using whatever calibration samples exist (or, with none,
// default bounds of [1µs, 1s]). Used when a run is cut short.
func (h *Histogram) ForceMeasurement() {
	switch h.phase {
	case Warmup:
		h.phase = Calibration
		fallthrough
	case Calibration:
		if len(h.calBuf) > 0 {
			h.calibrate()
		} else {
			h.setBounds(1e-6, 1)
			h.phase = Measurement
		}
	}
}

// StaticHistogram reproduces the fixed-bucket design of prior load testers
// (paper §II-B): linear buckets over a caller-chosen range that are never
// re-binned. Samples beyond the upper bound are clamped into the last
// bucket, silently truncating the tail — the failure mode the paper calls
// out. It exists so experiments can quantify that bias.
type StaticHistogram struct {
	lo, hi float64
	counts []uint64
	count  uint64
	min    float64
	max    float64 // true observed max (the histogram itself clamps)
}

// NewStatic returns a StaticHistogram with bins linear buckets on [lo, hi).
func NewStatic(lo, hi float64, bins int) (*StaticHistogram, error) {
	if bins < 2 || hi <= lo || lo < 0 {
		return nil, fmt.Errorf("hist: invalid static histogram [%g,%g) with %d bins", lo, hi, bins)
	}
	return &StaticHistogram{lo: lo, hi: hi, counts: make([]uint64, bins), min: math.Inf(1), max: math.Inf(-1)}, nil
}

// Record adds a sample, clamping it into the histogram range.
func (s *StaticHistogram) Record(v float64) {
	s.count++
	s.min = math.Min(s.min, v)
	s.max = math.Max(s.max, v)
	width := (s.hi - s.lo) / float64(len(s.counts))
	idx := int((v - s.lo) / width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.counts) {
		idx = len(s.counts) - 1 // tail truncation: the pitfall
	}
	s.counts[idx]++
}

// Count returns the number of recorded samples.
func (s *StaticHistogram) Count() uint64 { return s.count }

// Quantile returns the q-th quantile as estimated by the clamped buckets.
// Because of truncation this underestimates tail quantiles whenever samples
// exceeded the configured upper bound.
func (s *StaticHistogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("hist: quantile %g out of [0,1]", q)
	}
	if s.count == 0 {
		return 0, fmt.Errorf("hist: quantile of empty static histogram")
	}
	target := q * float64(s.count)
	width := (s.hi - s.lo) / float64(len(s.counts))
	acc := 0.0
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		next := acc + float64(c)
		if target <= next {
			fracIn := (target - acc) / float64(c)
			return s.lo + (float64(i)+fracIn)*width, nil
		}
		acc = next
	}
	return s.hi, nil
}

// TruncatedFraction reports the fraction of samples that exceeded the upper
// bound and were clamped, i.e. the tail mass the static design destroyed.
func (s *StaticHistogram) TruncatedFraction() float64 {
	if s.count == 0 {
		return 0
	}
	width := (s.hi - s.lo) / float64(len(s.counts))
	truncated := uint64(0)
	if s.max >= s.hi {
		// All samples >= hi landed in the last bucket; we cannot recover
		// the exact count, so recompute from the last bucket mass that
		// lies beyond hi-width proportionally. Conservative estimate: the
		// last bucket's samples whose true value exceeded hi are unknown,
		// so report the last bucket occupancy as an upper bound only when
		// the true max exceeded the range.
		truncated = s.counts[len(s.counts)-1]
	}
	_ = width
	return float64(truncated) / float64(s.count)
}

// ExactQuantile computes the exact q-th sample quantile from raw values
// using linear interpolation (type 7, the R/NumPy default). It is the
// reference implementation tests compare histograms against.
func ExactQuantile(values []float64, q float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("hist: exact quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("hist: quantile %g out of [0,1]", q)
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}
