package loadgen

import (
	"context"
	"testing"
	"time"
)

func sweepOpts() SweepOptions {
	return SweepOptions{
		Options:  Options{Conns: 4, Workload: smallWorkload(), Seed: 9},
		Duration: 400 * time.Millisecond,
		SLO:      SLO{Quantile: 0.99, Target: 50 * time.Millisecond},
	}
}

func TestSweepValidation(t *testing.T) {
	srv := startServer(t)
	ctx := context.Background()
	bad := sweepOpts()
	bad.Duration = 0
	if _, err := Sweep(ctx, srv.Addr(), []float64{100}, bad); err == nil {
		t.Error("zero duration should error")
	}
	bad = sweepOpts()
	bad.SLO.Quantile = 0
	if _, err := Sweep(ctx, srv.Addr(), []float64{100}, bad); err == nil {
		t.Error("bad quantile should error")
	}
	bad = sweepOpts()
	bad.SLO.Target = 0
	if _, err := Sweep(ctx, srv.Addr(), []float64{100}, bad); err == nil {
		t.Error("zero target should error")
	}
	if _, err := Sweep(ctx, srv.Addr(), nil, sweepOpts()); err == nil {
		t.Error("no rates should error")
	}
	if _, err := Sweep(ctx, srv.Addr(), []float64{-5}, sweepOpts()); err == nil {
		t.Error("negative rate should error")
	}
}

func TestSweepCurve(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	if err := Preload(srv.Addr(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	points, err := Sweep(context.Background(), srv.Addr(), []float64{2000, 500}, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	// Rates are measured in ascending order.
	if points[0].TargetRate != 500 || points[1].TargetRate != 2000 {
		t.Errorf("order: %v, %v", points[0].TargetRate, points[1].TargetRate)
	}
	for _, p := range points {
		if p.AchievedRate < p.TargetRate*0.7 || p.AchievedRate > p.TargetRate*1.3 {
			t.Errorf("rate %g achieved %g", p.TargetRate, p.AchievedRate)
		}
		if p.P50 <= 0 || p.P99 < p.P50 {
			t.Errorf("latencies p50=%v p99=%v", p.P50, p.P99)
		}
		// Loopback at these rates easily meets a 50ms p99.
		if !p.MeetsSLO {
			t.Errorf("rate %g should meet the generous SLO (p99=%v)", p.TargetRate, p.P99)
		}
	}
}

func TestFindCapacityFindsPassingPoint(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	if err := Preload(srv.Addr(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	best, ok, err := FindCapacity(context.Background(), srv.Addr(), 500, 4000, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no capacity found; floor point: %+v", best)
	}
	if !best.MeetsSLO {
		t.Errorf("best point violates SLO: %+v", best)
	}
	if best.TargetRate < 500 {
		t.Errorf("best rate %g below floor", best.TargetRate)
	}
}

func TestFindCapacityImpossibleSLO(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	if err := Preload(srv.Addr(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	opts := sweepOpts()
	opts.SLO.Target = time.Nanosecond // unmeetable
	_, ok, err := FindCapacity(context.Background(), srv.Addr(), 200, 1000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("nanosecond SLO reported as met")
	}
}

func TestFindCapacityValidation(t *testing.T) {
	srv := startServer(t)
	if _, _, err := FindCapacity(context.Background(), srv.Addr(), 100, 50, sweepOpts()); err == nil {
		t.Error("lo >= hi should error")
	}
	if _, _, err := FindCapacity(context.Background(), srv.Addr(), 0, 50, sweepOpts()); err == nil {
		t.Error("lo = 0 should error")
	}
}
