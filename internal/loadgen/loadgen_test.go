package loadgen

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"treadmill/internal/client"
	"treadmill/internal/loadplane"
	"treadmill/internal/server"
	"treadmill/internal/workload"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func smallWorkload() workload.Config {
	cfg := workload.Default()
	cfg.Keys = 200
	cfg.ValueSize = workload.SizeDist{Kind: "constant", Value: 64}
	return cfg
}

func TestPreload(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	if err := Preload(srv.Addr(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	if n := srv.Store().Len(); n != 200 {
		t.Errorf("store has %d items after preload, want 200", n)
	}
}

func TestOpenLoopAchievesRate(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	if err := Preload(srv.Addr(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var rtts []float64
	ol, err := NewOpenLoop(srv.Addr(), Options{
		Rate: 2000, Conns: 4, Workload: cfg, Seed: 2,
		OnResult: func(r *client.Result) {
			mu.Lock()
			rtts = append(rtts, r.RTT().Seconds())
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	stats, err := ol.Run(context.Background(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 {
		t.Errorf("%d errors", stats.Errors)
	}
	if stats.Completed != stats.Sent {
		t.Errorf("sent %d != completed %d", stats.Sent, stats.Completed)
	}
	// Poisson with rate 2000 over 2s: ~4000 sends, sd ~63.
	if math.Abs(stats.OfferedRate()-2000) > 200 {
		t.Errorf("offered rate = %g, want ~2000", stats.OfferedRate())
	}
	mu.Lock()
	n := len(rtts)
	mu.Unlock()
	if uint64(n) != stats.Completed {
		t.Errorf("OnResult saw %d, completed %d", n, stats.Completed)
	}
}

func TestOpenLoopPrecision(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	if err := Preload(srv.Addr(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	ol, err := NewOpenLoop(srv.Addr(), Options{Rate: 5000, Conns: 8, Workload: cfg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	stats, err := ol.Run(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if loadplane.SpinWaitNow() {
		// With spare cores the generator spin-waits: fewer than 5% of
		// sends more than one period late.
		if frac := float64(stats.LateSends) / float64(stats.Sent); frac > 0.05 {
			t.Errorf("late sends fraction = %g", frac)
		}
	}
	// Regardless of per-send precision, the offered rate must hold: the
	// schedule self-corrects by sending immediately when behind.
	if rate := stats.OfferedRate(); rate < 4000 || rate > 6000 {
		t.Errorf("offered rate = %g, want ~5000", rate)
	}
}

func TestOpenLoopContextCancel(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	ol, err := NewOpenLoop(srv.Addr(), Options{Rate: 1000, Conns: 2, Workload: cfg, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := ol.Run(ctx, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancel did not stop the run promptly")
	}
}

func TestOpenLoopValidation(t *testing.T) {
	srv := startServer(t)
	if _, err := NewOpenLoop(srv.Addr(), Options{Rate: 0, Conns: 1, Workload: smallWorkload()}); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := NewOpenLoop(srv.Addr(), Options{Rate: 100, Conns: 0, Workload: smallWorkload()}); err == nil {
		t.Error("zero conns should error")
	}
	ol, err := NewOpenLoop(srv.Addr(), Options{Rate: 100, Conns: 1, Workload: smallWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	if _, err := ol.Run(context.Background(), 0); err == nil {
		t.Error("zero duration should error")
	}
}

func TestClosedLoopKeepsOneOutstandingPerWorker(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	if err := Preload(srv.Addr(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	const conns = 4
	clg, err := NewClosedLoop(srv.Addr(), Options{Conns: conns, Workload: cfg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer clg.Close()
	stats, err := clg.Run(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 {
		t.Errorf("%d errors", stats.Errors)
	}
	if stats.Completed == 0 {
		t.Fatal("no completions")
	}
	// Closed loop on loopback: throughput = conns / rtt. Just sanity-check
	// it ran at a plausible clip and sent≈completed.
	if stats.Sent-stats.Completed > conns {
		t.Errorf("sent %d vs completed %d", stats.Sent, stats.Completed)
	}
}

func TestClosedLoopThinkTimeLowersThroughput(t *testing.T) {
	srv := startServer(t)
	cfg := smallWorkload()
	if err := Preload(srv.Addr(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	run := func(think time.Duration) float64 {
		clg, err := NewClosedLoop(srv.Addr(), Options{Conns: 2, ThinkTime: think, Workload: cfg, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		defer clg.Close()
		stats, err := clg.Run(context.Background(), 800*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return stats.OfferedRate()
	}
	fast := run(0)
	slow := run(5 * time.Millisecond)
	if slow >= fast/2 {
		t.Errorf("think time did not lower throughput: %g vs %g", slow, fast)
	}
	// 2 workers with 5ms think: at most ~2/5ms = 400 rps.
	if slow > 500 {
		t.Errorf("closed loop with think time ran at %g rps, want <= ~400", slow)
	}
}

func TestClosedLoopValidation(t *testing.T) {
	srv := startServer(t)
	if _, err := NewClosedLoop(srv.Addr(), Options{Conns: 0, Workload: smallWorkload()}); err == nil {
		t.Error("zero conns should error")
	}
	cl, err := NewClosedLoop(srv.Addr(), Options{Conns: 1, Workload: smallWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run(context.Background(), 0); err == nil {
		t.Error("zero duration should error")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := NewOpenLoop("127.0.0.1:1", Options{Rate: 100, Conns: 1, Workload: smallWorkload()}); err == nil {
		t.Error("open loop dial to dead port should error")
	}
	if _, err := NewClosedLoop("127.0.0.1:1", Options{Conns: 1, Workload: smallWorkload()}); err == nil {
		t.Error("closed loop dial to dead port should error")
	}
}

func TestSleepUntilPrecision(t *testing.T) {
	for _, d := range []time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 3 * time.Millisecond} {
		deadline := time.Now().Add(d)
		loadplane.SleepUntil(deadline, loadplane.SpinWaitNow())
		lag := time.Since(deadline)
		if lag < 0 {
			t.Errorf("woke before deadline by %v", -lag)
		}
		if lag > 2*time.Millisecond {
			t.Errorf("woke %v after a %v deadline", lag, d)
		}
	}
}
