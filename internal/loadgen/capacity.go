package loadgen

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"treadmill/internal/client"
	"treadmill/internal/stats"
)

// SLO is a latency service-level objective at one quantile.
type SLO struct {
	// Quantile in (0,1), e.g. 0.99.
	Quantile float64
	// Target is the latency bound for that quantile.
	Target time.Duration
}

// SweepPoint is one measured operating point of a rate sweep.
type SweepPoint struct {
	TargetRate   float64
	AchievedRate float64
	P50, P99     time.Duration
	QuantileSLO  time.Duration // latency at the SLO quantile
	MeetsSLO     bool
	Errors       uint64
}

// SweepOptions configures Sweep and FindCapacity.
type SweepOptions struct {
	// Conns / Workload / Seed configure each open-loop probe run.
	Options
	// Duration per probe run.
	Duration time.Duration
	// SLO to evaluate at each point.
	SLO SLO
}

func (o SweepOptions) validate() error {
	if o.Duration <= 0 {
		return fmt.Errorf("loadgen: sweep needs positive duration")
	}
	if o.SLO.Quantile <= 0 || o.SLO.Quantile >= 1 {
		return fmt.Errorf("loadgen: SLO quantile %g out of (0,1)", o.SLO.Quantile)
	}
	if o.SLO.Target <= 0 {
		return fmt.Errorf("loadgen: SLO target must be positive")
	}
	return nil
}

// measureRate runs one open-loop probe at the given rate and evaluates the
// SLO. This is the primitive Sweep and FindCapacity are built on: the
// paper's premise is that capacity questions ("how fast can this server go
// within a P99 budget?") must be answered with open-loop tail
// measurements, not closed-loop throughput numbers.
func measureRate(ctx context.Context, addr string, rate float64, opts SweepOptions) (SweepPoint, error) {
	genOpts := opts.Options
	genOpts.Rate = rate
	var mu sync.Mutex
	var rtts []float64
	genOpts.OnResult = func(r *client.Result) {
		if r.Err == nil {
			mu.Lock()
			rtts = append(rtts, r.RTT().Seconds())
			mu.Unlock()
		}
	}
	gen, err := NewOpenLoop(addr, genOpts)
	if err != nil {
		return SweepPoint{}, err
	}
	defer gen.Close()
	st, err := gen.Run(ctx, opts.Duration)
	if err != nil {
		return SweepPoint{}, err
	}
	if len(rtts) == 0 {
		return SweepPoint{}, fmt.Errorf("loadgen: no samples at %g rps", rate)
	}
	p50, err := stats.Quantile(rtts, 0.5)
	if err != nil {
		return SweepPoint{}, err
	}
	p99, err := stats.Quantile(rtts, 0.99)
	if err != nil {
		return SweepPoint{}, err
	}
	qs, err := stats.Quantile(rtts, opts.SLO.Quantile)
	if err != nil {
		return SweepPoint{}, err
	}
	sloLatency := time.Duration(qs * float64(time.Second))
	return SweepPoint{
		TargetRate:   rate,
		AchievedRate: st.OfferedRate(),
		P50:          time.Duration(p50 * float64(time.Second)),
		P99:          time.Duration(p99 * float64(time.Second)),
		QuantileSLO:  sloLatency,
		MeetsSLO:     sloLatency <= opts.SLO.Target && st.Errors == 0,
		Errors:       st.Errors,
	}, nil
}

// Sweep measures each target rate in turn (ascending) and returns the
// latency-vs-load curve — the classic open-loop characterization (paper
// Fig. 3's x-axis).
func Sweep(ctx context.Context, addr string, rates []float64, opts SweepOptions) ([]SweepPoint, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: sweep needs at least one rate")
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	out := make([]SweepPoint, 0, len(sorted))
	for _, r := range sorted {
		if r <= 0 {
			return nil, fmt.Errorf("loadgen: sweep rate %g must be positive", r)
		}
		p, err := measureRate(ctx, addr, r, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// FindCapacity binary-searches for the highest request rate whose measured
// SLO-quantile latency stays within the target, between lo and hi
// (requests/second). It returns the best passing operating point; ok is
// false when even lo violates the SLO.
func FindCapacity(ctx context.Context, addr string, lo, hi float64, opts SweepOptions) (best SweepPoint, ok bool, err error) {
	if err := opts.validate(); err != nil {
		return SweepPoint{}, false, err
	}
	if !(0 < lo && lo < hi) {
		return SweepPoint{}, false, fmt.Errorf("loadgen: need 0 < lo (%g) < hi (%g)", lo, hi)
	}
	// Check the floor first: if lo fails, there is no capacity to report.
	p, err := measureRate(ctx, addr, lo, opts)
	if err != nil {
		return SweepPoint{}, false, err
	}
	if !p.MeetsSLO {
		return p, false, nil
	}
	best, ok = p, true
	// Binary search until the bracket is within 5%.
	for hi/lo > 1.05 {
		if err := ctx.Err(); err != nil {
			return best, ok, err
		}
		mid := (lo + hi) / 2
		p, err := measureRate(ctx, addr, mid, opts)
		if err != nil {
			return best, ok, err
		}
		if p.MeetsSLO {
			best, ok = p, true
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, ok, nil
}
