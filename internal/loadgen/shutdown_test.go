package loadgen

import (
	"context"
	"net"
	"testing"
	"time"
)

// hangListener accepts and reads but never responds.
func hangListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestOpenLoopHungServerHonorsCancel: with a server that never responds,
// cancelling the context must end the run promptly — the drain abandons
// the in-flight requests by closing the pool, which fails their callbacks.
// Before the ctx-aware drain, Run blocked in wg.Wait forever (and a fleet
// campaign cell with it).
func TestOpenLoopHungServerHonorsCancel(t *testing.T) {
	ol, err := NewOpenLoop(hangListener(t), Options{
		Rate: 500, Conns: 2, Workload: smallWorkload(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()

	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := ol.Run(ctx, 30*time.Second)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run ignored cancellation with a hung server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run took %v to honor cancellation", elapsed)
	}
}

// TestClosedLoopHungServerHonorsCancel: the worker-thread controller
// blocks on its single outstanding response; cancellation must unwedge it
// the same way.
func TestClosedLoopHungServerHonorsCancel(t *testing.T) {
	cl, err := NewClosedLoop(hangListener(t), Options{
		Conns: 2, Workload: smallWorkload(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := cl.Run(ctx, 30*time.Second)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run ignored cancellation with a hung server")
	}
}
