// Mcrouter fan-out: measure tail latency through the protocol router in
// front of a pool of key-value backends — the paper's second workload
// (§V-C), live over TCP.
//
// It starts three backend servers, a consistent-hashing router in front of
// them, and runs the Treadmill measurement procedure against the router.
//
//	go run ./examples/mcrouter_fanout
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"treadmill/internal/core"
	"treadmill/internal/loadgen"
	"treadmill/internal/report"
	"treadmill/internal/router"
	"treadmill/internal/server"
	"treadmill/internal/workload"
)

func main() {
	// 1. Backend pool.
	var backends []string
	for i := 0; i < 3; i++ {
		srv, err := server.New(server.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		backends = append(backends, srv.Addr())
	}
	fmt.Println("backends:", backends)

	// 2. Router.
	r, err := router.New(router.DefaultConfig(backends))
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Start(); err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Println("router:", r.Addr())

	// 3. Preload through the router so keys land on their owning backends.
	wl := workload.Default()
	wl.Keys = 3000
	if err := loadgen.Preload(r.Addr(), wl, 1); err != nil {
		log.Fatal(err)
	}

	// 4. Measure through the router.
	cfg := core.DefaultConfig()
	cfg.MinRuns, cfg.MaxRuns = 3, 6
	cfg.Hist.WarmupSamples = 150
	cfg.Hist.CalibrationSamples = 500
	tcp := &core.TCPRunner{
		Addr:        r.Addr(),
		Instances:   4,
		PerInstance: loadgen.Options{Rate: 800, Conns: 4, Workload: wl},
		Duration:    2 * time.Second,
	}
	fmt.Println("measuring through the router (4 instances x 800 rps)...")
	m, err := core.Measure(context.Background(), cfg, tcp)
	if err != nil {
		log.Fatal(err)
	}
	tab := &report.Table{
		Title:   fmt.Sprintf("Tail latency through mcrouter (%d runs, %d samples)", len(m.Runs), m.TotalSamples),
		Headers: []string{"quantile", "estimate", "run-to-run stddev"},
	}
	for _, q := range cfg.Quantiles {
		tab.AddRow(fmt.Sprintf("p%g", q*100), report.Micros(m.Estimate[q]), report.Micros(m.StdDev[q]))
	}
	fmt.Println(tab)
	fmt.Printf("router proxied %d requests across %d backends\n", r.Requests(), len(backends))
}
