// Attribution: run a scaled-down version of the paper's tail-latency
// attribution study on the simulated testbed and print the Table-IV-style
// coefficient table.
//
// The study runs a 2-level full factorial over the four hardware factors
// (NUMA policy, Turbo Boost, DVFS governor, NIC affinity), measures each
// configuration with the Treadmill procedure, and fits a quantile
// regression with all interactions to attribute the P99 latency to the
// factors.
//
//	go run ./examples/attribution
package main

import (
	"context"
	"fmt"
	"log"

	"treadmill/internal/report"
	"treadmill/internal/runner"
	"treadmill/internal/sim"
)

func main() {
	base := sim.DefaultClusterConfig(8)
	base.Server.RandomPlacement = true

	study := &runner.Study{
		Base:           base,
		Factors:        runner.PaperFactors(),
		TotalRate:      700000, // ~70% server utilization: the paper's "high load"
		ConnsPerClient: 8,
		Duration:       0.1,
		Warmup:         0.03,
		Replicates:     3, // the paper uses 30; 3 keeps this example fast
		Quantiles:      []float64{0.5, 0.95, 0.99},
		Seed:           1,
		Progress: func(done, total int) {
			if done%8 == 0 || done == total {
				fmt.Printf("\rexperiments: %d/%d", done, total)
			}
		},
	}
	fmt.Println("running 2^4 factorial x 3 replicates on the simulated testbed...")
	res, err := study.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	tab := &report.Table{
		Title:   "Quantile regression at high utilization (per paper Table IV)",
		Headers: []string{"Factor", "p50 Est.", "p99 Est.", "p99 p-value"},
	}
	fit50, err := res.Fit(0.5, 100, 2)
	if err != nil {
		log.Fatal(err)
	}
	fit99, err := res.Fit(0.99, 100, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i := range fit99.Coefs {
		tab.AddRow(fit99.Coefs[i].Term,
			report.MicrosInt(fit50.Coefs[i].Est),
			report.MicrosInt(fit99.Coefs[i].Est),
			report.PValue(fit99.Coefs[i].P))
	}
	fmt.Println(tab)
	fmt.Printf("pseudo-R2: p50=%.3f p99=%.3f\n", fit50.PseudoR2, fit99.PseudoR2)

	best, predicted, err := runner.BestConfig(fit99, len(res.Factors))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended config (numa,turbo,dvfs,nic) = %s, predicted p99 = %s\n",
		runner.LevelsKey(best), report.Micros(predicted))
	for i, f := range study.Factors {
		level := f.Low
		if best[i] == 1 {
			level = f.High
		}
		fmt.Printf("  %-6s -> %s\n", f.Name, level)
	}
}
