// Capacity: answer the provisioning question the paper's methodology
// exists to make answerable — "how much load can this server take while
// keeping P99 inside budget?" — with open-loop measurements.
//
// A closed-loop tester reports a saturation throughput at which the tail
// is already destroyed; the open-loop sweep + binary search below finds
// the highest rate whose *measured* P99 still meets the SLO.
//
//	go run ./examples/capacity
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"treadmill"
	"treadmill/internal/report"
)

func main() {
	srv, err := treadmill.NewServer(treadmill.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	wl := treadmill.DefaultWorkload()
	wl.Keys = 2000
	if err := treadmill.Preload(srv.Addr(), wl, 1); err != nil {
		log.Fatal(err)
	}

	opts := treadmill.SweepOptions{
		Options:  treadmill.LoadOptions{Conns: 8, Workload: wl, Seed: 7},
		Duration: 1500 * time.Millisecond,
		SLO:      treadmill.SLO{Quantile: 0.99, Target: 5 * time.Millisecond},
	}

	// 1. Characterize the latency-vs-load curve.
	fmt.Println("sweeping load levels...")
	points, err := treadmill.Sweep(context.Background(), srv.Addr(),
		[]float64{1000, 2000, 4000, 8000}, opts)
	if err != nil {
		log.Fatal(err)
	}
	tab := &report.Table{
		Title:   "Latency vs offered load (open loop)",
		Headers: []string{"target rps", "achieved rps", "p50", "p99", "meets 5ms p99 SLO"},
	}
	for _, p := range points {
		tab.AddRow(fmt.Sprintf("%.0f", p.TargetRate), fmt.Sprintf("%.0f", p.AchievedRate),
			p.P50.String(), p.P99.String(), fmt.Sprintf("%v", p.MeetsSLO))
	}
	fmt.Println(tab)

	// 2. Binary-search the capacity under the SLO.
	fmt.Println("searching for capacity under the SLO...")
	best, ok, err := treadmill.FindCapacity(context.Background(), srv.Addr(), 1000, 16000, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("even the floor rate violates the SLO on this machine")
		return
	}
	fmt.Printf("capacity: ~%.0f rps with p99 = %v (SLO %v at p%.0f)\n",
		best.TargetRate, best.P99, opts.SLO.Target, opts.SLO.Quantile*100)
}
