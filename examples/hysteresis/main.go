// Hysteresis: demonstrate the paper's §II-D phenomenon and the procedure
// that defeats it.
//
// A single load-test run converges to a tight estimate — but restart the
// server and run again, and it converges to a *different* value, because
// the mapping of connections to cores (and thus to NUMA nodes and
// interrupt-heavy cores) is re-rolled on every restart. No amount of extra
// samples within one run fixes this; the only cure is repeating whole
// experiments and aggregating the per-run estimates, which is exactly what
// the measurement engine does.
//
//	go run ./examples/hysteresis
package main

import (
	"context"
	"fmt"
	"log"

	"treadmill/internal/core"
	"treadmill/internal/report"
	"treadmill/internal/sim"
)

func main() {
	cluster := sim.DefaultClusterConfig(8)
	cluster.Server.RandomPlacement = true // re-rolled placement per restart
	cluster.Server.CPU.Governor = sim.Performance

	runner := &core.SimRunner{
		Cluster:        cluster,
		RatePerClient:  700000.0 / 8, // ~70% server utilization
		ConnsPerClient: 4,
		Duration:       0.25,
		Warmup:         0.05,
	}

	cfg := core.DefaultConfig()
	cfg.MinRuns, cfg.MaxRuns = 6, 10

	fmt.Println("measuring a simulated server at 70% utilization, restarting between runs...")
	m, err := core.Measure(context.Background(), cfg, runner)
	if err != nil {
		log.Fatal(err)
	}

	tab := &report.Table{
		Title:   "Per-run converged p99 estimates (each run re-rolls the placement)",
		Headers: []string{"run", "p99", "deviation from mean"},
	}
	per := m.PerRun(0.99)
	mean := m.Estimate[0.99]
	for i, v := range per {
		tab.AddRow(fmt.Sprintf("#%d", i), report.Micros(v), report.Percent((v-mean)/mean))
	}
	fmt.Println(tab)
	fmt.Printf("single-run answers spread over %s of their mean — the hysteresis the\n", report.Percent(m.RelativeSpread()))
	fmt.Printf("paper reports as 15-67%%. The procedure's aggregate: p99 = %s ± %s.\n",
		report.Micros(m.Estimate[0.99]), report.Micros(m.StdDev[0.99]))
}
