// Quickstart: measure the tail latency of an in-process key-value server
// with the full Treadmill procedure.
//
// It starts the memcached-compatible TCP server, preloads a mixed GET/SET
// workload, and runs the measurement engine: multiple open-loop instances,
// warm-up/calibration/measurement phases, per-instance quantile
// aggregation, and repeated runs until the P99 estimate converges.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"treadmill/internal/core"
	"treadmill/internal/loadgen"
	"treadmill/internal/report"
	"treadmill/internal/server"
	"treadmill/internal/workload"
)

func main() {
	// 1. Start the system under test: an in-memory memcached-compatible
	// server on an ephemeral port.
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("server listening on", srv.Addr())

	// 2. Describe the workload: 90% GETs over a Zipfian key space with
	// ~1KB values, and preload the keys so GETs hit.
	wl := workload.Default()
	wl.Keys = 2000
	wl.ValueSize = workload.SizeDist{Kind: "lognormal", Mean: 256, CV2: 0.5}
	fmt.Printf("preloading %d keys...\n", wl.Keys)
	if err := loadgen.Preload(srv.Addr(), wl, 1); err != nil {
		log.Fatal(err)
	}

	// 3. Measure with the Treadmill procedure: 4 instances x 500 rps —
	// modest enough that even a small machine keeps its load generators
	// lightly utilized (the paper's own requirement, §II-C) —
	// repeated runs until the P99 converges.
	cfg := core.DefaultConfig()
	cfg.MinRuns, cfg.MaxRuns = 3, 6
	// Size the phases to the per-run sample volume (500 rps x 3s).
	cfg.Hist.WarmupSamples = 100
	cfg.Hist.CalibrationSamples = 400
	runner := &core.TCPRunner{
		Addr:        srv.Addr(),
		Instances:   4,
		PerInstance: loadgen.Options{Rate: 500, Conns: 4, Workload: wl},
		Duration:    3 * time.Second,
	}
	fmt.Println("measuring (4 instances x 500 rps, 3-6 runs)...")
	m, err := core.Measure(context.Background(), cfg, runner)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	tab := &report.Table{
		Title:   fmt.Sprintf("Treadmill measurement: %d runs, converged=%v, %d samples", len(m.Runs), m.Converged, m.TotalSamples),
		Headers: []string{"quantile", "estimate", "run-to-run stddev"},
	}
	for _, q := range cfg.Quantiles {
		tab.AddRow(fmt.Sprintf("p%g", q*100), report.Micros(m.Estimate[q]), report.Micros(m.StdDev[q]))
	}
	fmt.Println(tab)
	fmt.Printf("hysteresis spread at p99: %s\n", report.Percent(m.RelativeSpread()))
}
