// Loadtest comparison: demonstrate the open- vs closed-loop measurement
// bias on a real TCP server (paper §II-A / Fig. 6, live).
//
// It drives the same in-process key-value server with both controllers at
// comparable throughput while a tcpdump-style prober records ground-truth
// wire latency, then contrasts what each controller "sees".
//
//	go run ./examples/loadtest_comparison
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"treadmill/internal/capture"
	"treadmill/internal/client"
	"treadmill/internal/loadgen"
	"treadmill/internal/report"
	"treadmill/internal/server"
	"treadmill/internal/stats"
	"treadmill/internal/workload"
)

func main() {
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	wl := workload.Default()
	wl.Keys = 2000
	if err := loadgen.Preload(srv.Addr(), wl, 1); err != nil {
		log.Fatal(err)
	}

	const duration = 3 * time.Second

	// Ground truth: a single-outstanding prober measuring wire latency.
	probe := func() []float64 {
		p, err := capture.NewProber(srv.Addr(), "gt-probe")
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		stop := make(chan struct{})
		go func() {
			time.Sleep(duration)
			close(stop)
		}()
		if err := p.Run(time.Millisecond, 0, stop); err != nil {
			log.Printf("prober: %v", err)
		}
		return p.Wires()
	}

	collect := func() (func(*client.Result), *[]float64) {
		var mu sync.Mutex
		out := &[]float64{}
		return func(r *client.Result) {
			if r.Err == nil {
				mu.Lock()
				*out = append(*out, r.RTT().Seconds())
				mu.Unlock()
			}
		}, out
	}

	// Closed loop first: measure its throughput, then drive the open loop
	// at the same rate for an apples-to-apples comparison.
	cb, closedRTTs := collect()
	closed, err := loadgen.NewClosedLoop(srv.Addr(), loadgen.Options{
		Conns: 8, Workload: wl, Seed: 2, OnResult: cb,
	})
	if err != nil {
		log.Fatal(err)
	}
	var closedWire []float64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); closedWire = probe() }()
	closedStats, err := closed.Run(context.Background(), duration)
	closed.Close()
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}

	// The closed loop ran at the server's saturation throughput (that is
	// all a closed loop can do); drive the open loop at 70% of it so the
	// system is at high-but-stable utilization, the paper's regime.
	ob, openRTTs := collect()
	open, err := loadgen.NewOpenLoop(srv.Addr(), loadgen.Options{
		Rate: 0.7 * closedStats.OfferedRate(), Conns: 8, Workload: wl, Seed: 3, OnResult: ob,
	})
	if err != nil {
		log.Fatal(err)
	}
	var openWire []float64
	wg.Add(1)
	go func() { defer wg.Done(); openWire = probe() }()
	openStats, err := open.Run(context.Background(), duration)
	open.Close()
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, rtts, wire []float64, rate float64) []string {
		s, _ := stats.Summarize(rtts)
		w, _ := stats.Summarize(wire)
		return []string{name, fmt.Sprintf("%.0f", rate),
			report.Micros(s.P50), report.Micros(s.P99), report.Micros(w.P99)}
	}
	tab := &report.Table{
		Title:   "Open- vs closed-loop measurement of the same server",
		Headers: []string{"controller", "rps", "p50 measured", "p99 measured", "p99 ground truth"},
	}
	tab.AddRow(row("closed-loop", *closedRTTs, closedWire, closedStats.OfferedRate())...)
	tab.AddRow(row("open-loop", *openRTTs, openWire, openStats.OfferedRate())...)
	fmt.Println(tab)
	fmt.Println("The closed loop caps outstanding requests at its connection count, so it")
	fmt.Println("cannot exercise the queueing behaviour an open-loop arrival process creates.")
}
