// Package treadmill is a statistically rigorous tail-latency measurement
// and attribution toolkit — a reproduction of "Treadmill: Attributing the
// Source of Tail Latency through Precise Load Testing and Statistical
// Inference" (Zhang, Meisner, Mars, Tang; ISCA 2016).
//
// The package is a facade over the implementation packages. It exposes:
//
//   - the measurement engine (Measure): open-loop load over multiple
//     lightly-utilized instances, warm-up/calibration/measurement phases,
//     per-instance quantile aggregation, and repeated runs until the
//     estimate converges despite performance hysteresis;
//   - load generation over real TCP against any memcached-protocol server
//     (NewOpenLoop / NewClosedLoop, plus the bundled Server and Router);
//   - the discrete-event testbed simulator used for the paper's hardware
//     attribution study (SimCluster, the runner.Study campaign driver);
//   - quantile regression with factorial interaction models
//     (FitQuantileRegression) for attributing tail latency to factors.
//
// See examples/ for complete programs and DESIGN.md for the system map.
package treadmill

import (
	"context"

	"treadmill/internal/agg"
	"treadmill/internal/core"
	"treadmill/internal/dist"
	"treadmill/internal/loadgen"
	"treadmill/internal/quantreg"
	"treadmill/internal/router"
	"treadmill/internal/server"
	"treadmill/internal/sim"
	"treadmill/internal/workload"
)

// Measurement engine (internal/core).
type (
	// Config controls the Treadmill measurement procedure.
	Config = core.Config
	// Measurement is the outcome: converged estimates plus per-run detail.
	Measurement = core.Measurement
	// Runner produces per-instance latency streams for one experiment run.
	Runner = core.Runner
	// RunnerFunc adapts a function to Runner.
	RunnerFunc = core.RunnerFunc
	// TCPRunner drives a real memcached-protocol endpoint.
	TCPRunner = core.TCPRunner
	// SimRunner drives the discrete-event testbed simulator.
	SimRunner = core.SimRunner
)

// DefaultConfig returns the paper-shaped measurement procedure.
func DefaultConfig() Config { return core.DefaultConfig() }

// Measure executes the full Treadmill procedure: repeated experiment runs,
// per-instance quantile extraction, cross-instance combination, and
// convergence detection on the primary quantile.
func Measure(ctx context.Context, cfg Config, r Runner) (*Measurement, error) {
	return core.Measure(ctx, cfg, r)
}

// Load generation (internal/loadgen, internal/workload).
type (
	// LoadOptions configures a load generator.
	LoadOptions = loadgen.Options
	// OpenLoop is the precisely-timed Poisson (open-loop) generator.
	OpenLoop = loadgen.OpenLoop
	// ClosedLoop is the worker-thread (closed-loop) generator, provided to
	// quantify its bias.
	ClosedLoop = loadgen.ClosedLoop
	// Workload describes the request mix (JSON-configurable).
	Workload = workload.Config
)

// NewOpenLoop connects an open-loop generator to addr.
func NewOpenLoop(addr string, opts LoadOptions) (*OpenLoop, error) {
	return loadgen.NewOpenLoop(addr, opts)
}

// NewClosedLoop connects a closed-loop generator to addr.
func NewClosedLoop(addr string, opts LoadOptions) (*ClosedLoop, error) {
	return loadgen.NewClosedLoop(addr, opts)
}

// DefaultWorkload returns the GET-dominated mixed workload.
func DefaultWorkload() Workload { return workload.Default() }

// LoadWorkload reads a workload description from a JSON file.
func LoadWorkload(path string) (Workload, error) { return workload.Load(path) }

// Preload stores a workload's full key space on the server so GETs hit.
func Preload(addr string, wl Workload, seed uint64) error {
	return loadgen.Preload(addr, wl, seed)
}

// Capacity planning (internal/loadgen).
type (
	// SLO is a latency objective at one quantile.
	SLO = loadgen.SLO
	// SweepOptions configures Sweep and FindCapacity.
	SweepOptions = loadgen.SweepOptions
	// SweepPoint is one measured operating point.
	SweepPoint = loadgen.SweepPoint
)

// Sweep measures the latency-vs-load curve at the given rates.
func Sweep(ctx context.Context, addr string, rates []float64, opts SweepOptions) ([]SweepPoint, error) {
	return loadgen.Sweep(ctx, addr, rates, opts)
}

// FindCapacity binary-searches for the highest rate that meets the SLO.
func FindCapacity(ctx context.Context, addr string, lo, hi float64, opts SweepOptions) (SweepPoint, bool, error) {
	return loadgen.FindCapacity(ctx, addr, lo, hi, opts)
}

// Servers (internal/server, internal/router).
type (
	// Server is the bundled memcached-protocol key-value server.
	Server = server.Server
	// ServerConfig configures it.
	ServerConfig = server.Config
	// Router is the bundled mcrouter-style protocol router.
	Router = router.Router
	// RouterConfig configures it.
	RouterConfig = router.Config
)

// NewServer creates a key-value server (call Start to listen).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// DefaultServerConfig returns a production-shaped server configuration on
// an ephemeral localhost port.
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// NewRouter creates a protocol router over the given backends.
func NewRouter(cfg RouterConfig) (*Router, error) { return router.New(cfg) }

// DefaultRouterConfig returns a router configuration for the backends.
func DefaultRouterConfig(backends []string) RouterConfig { return router.DefaultConfig(backends) }

// Simulator (internal/sim).
type (
	// SimCluster is the discrete-event testbed: clients, links, and a
	// server with NUMA / Turbo / DVFS / NIC-affinity models.
	SimCluster = sim.Cluster
	// SimClusterConfig wires a testbed.
	SimClusterConfig = sim.ClusterConfig
	// SimRequest is one simulated request with all measurement-point
	// timestamps (load-tester view, wire view, server view).
	SimRequest = sim.Request
)

// NewSimCluster instantiates a simulated testbed.
func NewSimCluster(cfg SimClusterConfig) (*SimCluster, error) { return sim.NewCluster(cfg) }

// DefaultSimCluster returns the default testbed shape with n clients.
func DefaultSimCluster(n int) SimClusterConfig { return sim.DefaultClusterConfig(n) }

// Statistical inference (internal/quantreg, internal/agg).
type (
	// QuantRegModel describes regression terms (factors + interactions).
	QuantRegModel = quantreg.Model
	// QuantRegOptions configures the fit.
	QuantRegOptions = quantreg.Options
	// QuantRegResult is a fitted quantile regression.
	QuantRegResult = quantreg.Result
	// Combine selects how per-instance metrics are reduced.
	Combine = agg.Combine
)

// Cross-instance combinators.
const (
	CombineMean   = agg.Mean
	CombineMedian = agg.Median
	CombineMax    = agg.Max
)

// FullFactorialModel builds the model with all interactions over the named
// factors (paper Eq. 1).
func FullFactorialModel(factors []string) (*QuantRegModel, error) {
	return quantreg.FullFactorialModel(factors)
}

// FitQuantileRegression estimates the conditional tau-quantile of y given
// the raw factor rows x.
func FitQuantileRegression(m *QuantRegModel, x [][]float64, y []float64, tau float64, opts QuantRegOptions) (*QuantRegResult, error) {
	return quantreg.Fit(m, x, y, tau, opts)
}

// NewRNG returns a seeded random stream compatible with every option
// struct in this module.
func NewRNG(seed uint64) *dist.RNG { return dist.NewRNG(seed) }
