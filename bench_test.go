// Benchmarks that regenerate every table and figure of the paper's
// evaluation (at Quick scale; use cmd/tailbench -scale full for
// paper-sized campaigns), plus ablation benches for the design choices
// DESIGN.md calls out. Reported ns/op is the cost of regenerating the
// experiment end to end.
package treadmill_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"treadmill/internal/agg"
	"treadmill/internal/anova"
	"treadmill/internal/core"
	"treadmill/internal/dist"
	"treadmill/internal/experiments"
	"treadmill/internal/hist"
	"treadmill/internal/loadgen"
	"treadmill/internal/quantreg"
	"treadmill/internal/server"
	"treadmill/internal/sim"
	"treadmill/internal/stats"
	"treadmill/internal/workload"
)

// attribution campaigns are expensive; share them across the benches that
// consume them (Table IV, Figs. 7-12).
var (
	attrOnce      sync.Once
	attrMemcached *experiments.Attribution
	attrMcrouter  *experiments.Attribution
	attrErr       error
)

func attributions(b *testing.B) (*experiments.Attribution, *experiments.Attribution) {
	b.Helper()
	attrOnce.Do(func() {
		s := experiments.Quick()
		attrMemcached, attrErr = experiments.RunAttribution(context.Background(), s, "memcached")
		if attrErr != nil {
			return
		}
		attrMcrouter, attrErr = experiments.RunAttribution(context.Background(), s, "mcrouter")
	})
	if attrErr != nil {
		b.Fatal(attrErr)
	}
	return attrMemcached, attrMcrouter
}

func BenchmarkFig1OutstandingRequests(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ClientDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig2(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3ClientQueueingBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig3(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Hysteresis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig4(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5LowUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig5(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6HighUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig6(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4QuantileRegression(b *testing.B) {
	mem, _ := attributions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table4(mem); len(tab.Rows) != 16 {
			b.Fatalf("%d rows", len(tab.Rows))
		}
	}
}

func BenchmarkFig7MemcachedEstimates(b *testing.B) {
	mem, _ := attributions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(mem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8MemcachedMarginal(b *testing.B) {
	mem, _ := attributions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(mem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9McrouterEstimates(b *testing.B) {
	_, mcr := attributions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(mcr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10McrouterMarginal(b *testing.B) {
	_, mcr := attributions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(mcr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11PseudoR2(b *testing.B) {
	mem, mcr := attributions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig11(mem, mcr); len(tab.Rows) != 4 {
			b.Fatalf("%d rows", len(tab.Rows))
		}
	}
}

func BenchmarkFig12Tuning(b *testing.B) {
	mem, _ := attributions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig12(mem); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// BenchmarkAblationControlLoop contrasts open- vs closed-loop generation
// cost and reports the p99 each controller observes on the same simulated
// server (metrics "open_p99_us" / "closed_p99_us").
func BenchmarkAblationControlLoop(b *testing.B) {
	run := func(open bool, seed uint64) float64 {
		cfg := sim.DefaultClusterConfig(4)
		cfg.Server.CPU.Governor = sim.Performance
		cfg.Seed = seed
		cluster, err := sim.NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var lats []float64
		for _, c := range cluster.Clients {
			c.OnComplete = func(r *sim.Request) {
				if r.Created > 0.02 {
					lats = append(lats, r.MeasuredLatency())
				}
			}
			if open {
				if err := c.StartOpenLoop(700000.0/4, 16); err != nil {
					b.Fatal(err)
				}
			} else {
				if err := c.StartClosedLoop(30, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
		cluster.Run(0.1)
		p99, err := stats.Quantile(lats, 0.99)
		if err != nil {
			b.Fatal(err)
		}
		return p99
	}
	var openP99, closedP99 float64
	for i := 0; i < b.N; i++ {
		openP99 = run(true, uint64(i)+1)
		closedP99 = run(false, uint64(i)+1)
	}
	b.ReportMetric(openP99*1e6, "open_p99_us")
	b.ReportMetric(closedP99*1e6, "closed_p99_us")
}

// BenchmarkAblationAggregation contrasts pooled vs per-instance quantile
// aggregation on a fleet with one deviant client.
func BenchmarkAblationAggregation(b *testing.B) {
	rng := dist.NewRNG(1)
	instances := make([][]float64, 4)
	srcs := make([]agg.QuantileSource, 4)
	for i := range instances {
		shift := 100e-6
		if i == 0 {
			shift = 250e-6 // remote-rack client
		}
		s := make([]float64, 20000)
		for j := range s {
			s[j] = shift + 10e-6*rng.Normal()
		}
		instances[i] = s
		srcs[i] = agg.Samples(s)
	}
	var pooled, per float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		pooled, err = agg.Pooled(instances, 0.99)
		if err != nil {
			b.Fatal(err)
		}
		per, err = agg.PerInstance(srcs, 0.99, agg.Mean)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pooled*1e6, "pooled_p99_us")
	b.ReportMetric(per*1e6, "per_instance_p99_us")
}

// BenchmarkAblationHistogramBinning contrasts the adaptive histogram with
// the static-bucket design on a drifting latency stream, reporting the p99
// error of each against the exact quantile.
func BenchmarkAblationHistogramBinning(b *testing.B) {
	rng := dist.NewRNG(2)
	samples := make([]float64, 100000)
	for j := range samples {
		samples[j] = 100e-6 * (1 + float64(j)/2000) * (0.9 + 0.2*rng.Float64())
	}
	exact, _ := hist.ExactQuantile(samples, 0.99)
	var adaptiveErr, staticErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := hist.New(hist.Config{WarmupSamples: 0, CalibrationSamples: 1000, Bins: 2048, OverflowRebinFraction: 0.001})
		if err != nil {
			b.Fatal(err)
		}
		st, err := hist.NewStatic(0, 1e-3, 2048)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range samples {
			if err := h.Record(v); err != nil {
				b.Fatal(err)
			}
			st.Record(v)
		}
		ap99, err := h.Quantile(0.99)
		if err != nil {
			b.Fatal(err)
		}
		sp99, err := st.Quantile(0.99)
		if err != nil {
			b.Fatal(err)
		}
		adaptiveErr = (ap99 - exact) / exact
		staticErr = (sp99 - exact) / exact
	}
	b.ReportMetric(adaptiveErr*100, "adaptive_p99_err_pct")
	b.ReportMetric(staticErr*100, "static_p99_err_pct")
}

// BenchmarkAblationHysteresis contrasts a single run against the
// repeated-run procedure, reporting the run-to-run spread the single-run
// design silently ignores.
func BenchmarkAblationHysteresis(b *testing.B) {
	runner := &core.SimRunner{
		Cluster:        func() sim.ClusterConfig { c := sim.DefaultClusterConfig(4); c.Server.RandomPlacement = true; return c }(),
		RatePerClient:  700000.0 / 4,
		ConnsPerClient: 4,
		Duration:       0.08,
		Warmup:         0.02,
	}
	cfg := core.DefaultConfig()
	cfg.Hist = hist.Config{WarmupSamples: 100, CalibrationSamples: 500, Bins: 2048, OverflowRebinFraction: 0.001}
	cfg.MinRuns, cfg.MaxRuns = 4, 5
	cfg.ConvergenceWindow = 2
	var spread float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		m, err := core.Measure(context.Background(), cfg, runner)
		if err != nil {
			b.Fatal(err)
		}
		spread = m.RelativeSpread()
	}
	b.ReportMetric(spread*100, "run_spread_pct")
}

// BenchmarkAblationQuantregSolver contrasts the IRLS and exact-simplex
// quantile regression solvers on the paper-shaped 480x16 problem.
func BenchmarkAblationQuantregSolver(b *testing.B) {
	rng := dist.NewRNG(3)
	m, err := quantreg.FullFactorialModel([]string{"numa", "turbo", "dvfs", "nic"})
	if err != nil {
		b.Fatal(err)
	}
	var x [][]float64
	var y []float64
	for rep := 0; rep < 30; rep++ {
		for mask := 0; mask < 16; mask++ {
			row := []float64{float64(mask & 1), float64(mask >> 1 & 1), float64(mask >> 2 & 1), float64(mask >> 3 & 1)}
			x = append(x, row)
			y = append(y, 355+56*row[0]-29*row[1]-8*row[2]+29*row[3]+10*rng.Normal())
		}
	}
	for _, solver := range []quantreg.Solver{quantreg.IRLS, quantreg.Simplex} {
		b.Run(solver.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := quantreg.Fit(m, x, y, 0.99, quantreg.Options{Solver: solver}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTCPMeasurement times the full measurement procedure against the
// real TCP server (the quickstart path).
func BenchmarkTCPMeasurement(b *testing.B) {
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	wl := workload.Default()
	wl.Keys = 100
	wl.ValueSize = workload.SizeDist{Kind: "constant", Value: 128}
	if err := loadgen.Preload(srv.Addr(), wl, 1); err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.MinRuns, cfg.MaxRuns = 2, 2
	cfg.ConvergenceWindow = 1
	cfg.ConvergenceTolerance = 0.5
	cfg.Hist.WarmupSamples = 50
	cfg.Hist.CalibrationSamples = 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		_, err := core.Measure(context.Background(), cfg, &core.TCPRunner{
			Addr:        srv.Addr(),
			Instances:   2,
			PerInstance: loadgen.Options{Rate: 2000, Conns: 2, Workload: wl},
			Duration:    300 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationANOVAvsQuantreg contrasts the paper's chosen technique
// with the classic ANOVA baseline on a response whose factor effect lives
// only in the tail: ANOVA (mean model) reports an insignificant effect
// while p99 quantile regression recovers it (metrics are the recovered
// effect sizes).
func BenchmarkAblationANOVAvsQuantreg(b *testing.B) {
	rng := dist.NewRNG(7)
	m, err := quantreg.FullFactorialModel([]string{"a"})
	if err != nil {
		b.Fatal(err)
	}
	var x [][]float64
	var y []float64
	for i := 0; i < 4000; i++ {
		a := float64(i % 2)
		x = append(x, []float64{a})
		v := 100 + rng.Normal()
		if a == 1 {
			if rng.Float64() < 0.05 {
				v += 60
			} else {
				v -= 60.0 * 0.05 / 0.95
			}
		}
		y = append(y, v)
	}
	var anovaEst, qrEst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		av, err := anova.Fit(m, x, y)
		if err != nil {
			b.Fatal(err)
		}
		ea, _ := av.Effect("a")
		anovaEst = ea.Est
		qr, err := quantreg.Fit(m, x, y, 0.99, quantreg.Options{Solver: quantreg.IRLS})
		if err != nil {
			b.Fatal(err)
		}
		ca, _ := qr.Coef("a")
		qrEst = ca.Est
	}
	b.ReportMetric(anovaEst, "anova_mean_effect")
	b.ReportMetric(qrEst, "quantreg_p99_effect")
}
