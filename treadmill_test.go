package treadmill_test

import (
	"context"
	"testing"
	"time"

	"treadmill"
)

// TestFacadeEndToEnd exercises the public API exactly as a downstream user
// would: bring up the bundled server, preload a workload, and run the full
// measurement procedure.
func TestFacadeEndToEnd(t *testing.T) {
	srv, err := treadmill.NewServer(treadmill.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	wl := treadmill.DefaultWorkload()
	wl.Keys = 100
	if err := treadmill.Preload(srv.Addr(), wl, 1); err != nil {
		t.Fatal(err)
	}

	cfg := treadmill.DefaultConfig()
	cfg.MinRuns, cfg.MaxRuns = 2, 3
	cfg.ConvergenceWindow = 1
	cfg.ConvergenceTolerance = 0.5
	cfg.Hist.WarmupSamples = 50
	cfg.Hist.CalibrationSamples = 200
	m, err := treadmill.Measure(context.Background(), cfg, &treadmill.TCPRunner{
		Addr:        srv.Addr(),
		Instances:   2,
		PerInstance: treadmill.LoadOptions{Rate: 2000, Conns: 2, Workload: wl},
		Duration:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Estimate[0.99] <= 0 {
		t.Errorf("p99 estimate = %g", m.Estimate[0.99])
	}
	if m.Estimate[0.99] < m.Estimate[0.5] {
		t.Error("p99 < p50")
	}
}

// TestFacadeSimulatorAndRegression exercises the simulator and quantile
// regression through the facade.
func TestFacadeSimulatorAndRegression(t *testing.T) {
	cluster, err := treadmill.NewSimCluster(treadmill.DefaultSimCluster(2))
	if err != nil {
		t.Fatal(err)
	}
	var lats []float64
	for _, c := range cluster.Clients {
		c.OnComplete = func(r *treadmill.SimRequest) {
			lats = append(lats, r.MeasuredLatency())
		}
		if err := c.StartOpenLoop(20000, 8); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Run(0.2)
	if len(lats) < 1000 {
		t.Fatalf("only %d simulated samples", len(lats))
	}

	// Fit a tiny quantile regression through the facade.
	model, err := treadmill.FullFactorialModel([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	rng := treadmill.NewRNG(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := float64(i%2), float64((i/2)%2)
		x = append(x, []float64{a, b})
		y = append(y, 10+4*a-2*b+rng.Normal()*0.1)
	}
	fit, err := treadmill.FitQuantileRegression(model, x, y, 0.5, treadmill.QuantRegOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := fit.Coef("a"); !ok || c.Est < 3.5 || c.Est > 4.5 {
		t.Errorf("a coefficient = %+v", c)
	}
	if fit.PseudoR2 < 0.9 {
		t.Errorf("pseudo-R2 = %g", fit.PseudoR2)
	}
}

// TestFacadeRouter exercises the bundled router through the facade.
func TestFacadeRouter(t *testing.T) {
	srv, err := treadmill.NewServer(treadmill.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r, err := treadmill.NewRouter(treadmill.DefaultRouterConfig([]string{srv.Addr()}))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	wl := treadmill.DefaultWorkload()
	wl.Keys = 20
	if err := treadmill.Preload(r.Addr(), wl, 1); err != nil {
		t.Fatal(err)
	}
	if srv.Store().Len() != 20 {
		t.Errorf("backend holds %d keys", srv.Store().Len())
	}
}
